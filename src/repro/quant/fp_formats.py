"""Software FP4 / FP6 / FP8 minifloat formats (paper §3).

The paper's §3 measures how far low-precision floating-point KV storage
can go: FP4 (E2M1), FP6 (E3M2) and FP8 (E4M3) cut the KV size but cap
out at ~73% compression (with MX-style shared block scales) versus the
~86% of the 2-bit integer schemes, so communication and memory-access
overheads remain substantial.  The paper also notes that pre-H100 GPUs
must up-convert these formats to FP16 before computing.

This module implements the formats in software:

* :class:`MiniFloatFormat` — a (sign, exponent, mantissa) layout with
  IEEE-style subnormals and round-to-nearest-even on the value grid;
* :func:`encode` / :func:`decode` — value ↔ bit-pattern conversion;
* :class:`FpCastCompressor` — the :class:`KVCompressor` adapter, with
  optional OCP-MX shared power-of-two block scales (one E8M0 scale byte
  per ``block_size`` elements), matching how FP4/FP6 KV storage is
  deployed in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .base import CompressedKV, KVCompressor

__all__ = [
    "MiniFloatFormat",
    "FP4_E2M1",
    "FP6_E3M2",
    "FP8_E4M3",
    "representable_values",
    "encode",
    "decode",
    "cast",
    "FpCastCompressor",
]

_FP16_BYTES = 2


@dataclass(frozen=True)
class MiniFloatFormat:
    """A small floating-point layout: 1 sign, ``exp_bits``, ``man_bits``."""

    name: str
    exp_bits: int
    man_bits: int

    @property
    def bits(self) -> int:
        return 1 + self.exp_bits + self.man_bits

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def max_value(self) -> float:
        """Largest finite magnitude (no inf/nan codes, as in E4M3-style)."""
        return float(representable_values(self).max())


FP4_E2M1 = MiniFloatFormat("fp4_e2m1", exp_bits=2, man_bits=1)
FP6_E3M2 = MiniFloatFormat("fp6_e3m2", exp_bits=3, man_bits=2)
FP8_E4M3 = MiniFloatFormat("fp8_e4m3", exp_bits=4, man_bits=3)


@lru_cache(maxsize=None)
def representable_values(fmt: MiniFloatFormat) -> np.ndarray:
    """All values the format can represent, sorted ascending.

    All exponent codes are treated as finite (the "FN" convention used
    by ML formats like E4M3FN); subnormals use exponent code 0.
    """
    magnitudes = []
    for exp_code in range(1 << fmt.exp_bits):
        for man_code in range(1 << fmt.man_bits):
            if exp_code == 0:  # subnormal
                mag = man_code / (1 << fmt.man_bits) * 2.0 ** (1 - fmt.bias)
            else:
                mag = (1 + man_code / (1 << fmt.man_bits)) * 2.0 ** (
                    exp_code - fmt.bias
                )
            magnitudes.append(mag)
    values = sorted(set([-m for m in magnitudes] + magnitudes))
    return np.array(values)


def encode(x: np.ndarray, fmt: MiniFloatFormat) -> np.ndarray:
    """Round each value to the nearest representable and return grid indices.

    Values beyond the largest finite magnitude saturate; exact midpoints
    between grid points round toward the smaller index, which on this
    symmetric grid alternates rounding direction like round-to-even.
    """
    grid = representable_values(fmt)
    x = np.clip(np.asarray(x, dtype=np.float64), grid[0], grid[-1])
    idx = np.searchsorted(grid, x)
    idx = np.clip(idx, 1, grid.size - 1)
    left_closer = (x - grid[idx - 1]) <= (grid[idx] - x)
    return np.where(left_closer, idx - 1, idx).astype(np.uint8)


def decode(codes: np.ndarray, fmt: MiniFloatFormat) -> np.ndarray:
    """Map grid indices back to values."""
    grid = representable_values(fmt)
    codes = np.asarray(codes)
    if codes.size and (codes.min() < 0 or codes.max() >= grid.size):
        raise ValueError(f"code out of range for {fmt.name}")
    return grid[codes]


def cast(x: np.ndarray, fmt: MiniFloatFormat) -> np.ndarray:
    """Round-trip ``x`` through the format (the usual 'cast to FP4' op)."""
    return decode(encode(x, fmt), fmt)


class FpCastCompressor(KVCompressor):
    """KV compressor that stores planes in a minifloat format.

    With ``shared_block_scale`` (default), each block of ``block_size``
    elements along the channel axis shares a power-of-two scale chosen
    so the block's maximum lands at the format's maximum — the OCP MX
    convention.  One scale byte (E8M0) is charged per block.
    """

    def __init__(self, fmt: MiniFloatFormat, block_size: int = 32,
                 shared_block_scale: bool = True) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.fmt = fmt
        self.block_size = block_size
        self.shared_block_scale = shared_block_scale
        self.name = fmt.name

    def compress(self, plane: np.ndarray) -> CompressedKV:
        plane = self._check_plane(plane)
        n_tokens, n_channels = plane.shape
        if self.shared_block_scale:
            scales = self._block_scales(plane)
            scaled = plane / np.repeat(scales, self.block_size, axis=1)[
                :, :n_channels
            ]
        else:
            scales = None
            scaled = plane
        codes = encode(scaled, self.fmt)
        nbytes = plane.size * self.fmt.bits // 8
        if scales is not None:
            nbytes += scales.size  # one E8M0 byte per block
        payload = {"codes": codes, "scales": scales}
        return CompressedKV(self.name, plane.shape, nbytes, payload)

    def decompress(self, compressed: CompressedKV) -> np.ndarray:
        codes = compressed.payload["codes"]
        out = decode(codes, self.fmt)
        scales = compressed.payload["scales"]
        if scales is not None:
            n_channels = compressed.shape[1]
            out = out * np.repeat(scales, self.block_size, axis=1)[:, :n_channels]
        return out

    def _block_scales(self, plane: np.ndarray) -> np.ndarray:
        """Per-(token, channel-block) power-of-two scales, MX style."""
        n_tokens, n_channels = plane.shape
        n_blocks = (n_channels + self.block_size - 1) // self.block_size
        scales = np.ones((n_tokens, n_blocks))
        for b in range(n_blocks):
            lo, hi = b * self.block_size, min((b + 1) * self.block_size, n_channels)
            mag = np.abs(plane[:, lo:hi]).max(axis=1)
            with np.errstate(divide="ignore"):
                exp = np.ceil(np.log2(mag / self.fmt.max_value))
            exp = np.where(np.isfinite(exp), exp, 0.0)
            scales[:, b] = 2.0 ** exp
        return scales
