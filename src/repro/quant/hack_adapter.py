"""HACK's own quantizer exposed through the compressor interface.

This lets the accuracy harness and the compression-ratio accounting
treat HACK uniformly with CacheGen/KVQuant/FPx: K planes are quantized
per-token along the channel axis (how the KV cache stores K), V planes
per-block along the token axis (how it stores V).  The ``nbytes``
includes the SE sum storage, matching what actually crosses the wire
and sits in the decode GPU's cache (§5.1 step 7 sends K', V', m and s).
"""

from __future__ import annotations

import numpy as np

from ..core.quantize import dequantize, quantize
from .base import CompressedKV, KVCompressor

__all__ = ["HackCompressor"]


class HackCompressor(KVCompressor):
    """Partitioned asymmetric 2-bit quantizer as a KV-plane compressor.

    Parameters
    ----------
    partition_size:
        Π (64 by default, the paper's evaluation setting).
    bits:
        Code width (2 in the paper).
    plane_kind:
        ``"k"`` — partitions along channels (head dim), per token;
        ``"v"`` — partitions along tokens (sequence dim), per channel.
    include_sums:
        Charge the SE sum storage in ``nbytes``.
    """

    name = "hack"

    def __init__(self, partition_size: int = 64, bits: int = 2,
                 plane_kind: str = "k", include_sums: bool = True,
                 rounding: str = "stochastic", seed: int = 0) -> None:
        if plane_kind not in ("k", "v"):
            raise ValueError(f"plane_kind must be 'k' or 'v', got {plane_kind!r}")
        self.partition_size = partition_size
        self.bits = bits
        self.plane_kind = plane_kind
        self.include_sums = include_sums
        self.rounding = rounding
        self.seed = seed

    def compress(self, plane: np.ndarray) -> CompressedKV:
        plane = self._check_plane(plane)
        axis = 1 if self.plane_kind == "k" else 0
        rng = np.random.default_rng(self.seed)
        qt = quantize(plane, self.bits, axis=axis,
                      partition_size=self.partition_size, rng=rng,
                      rounding=self.rounding)
        nbytes = qt.total_nbytes(with_sums=self.include_sums)
        return CompressedKV(self.name, plane.shape, nbytes, {"qt": qt})

    def decompress(self, compressed: CompressedKV) -> np.ndarray:
        return dequantize(compressed.payload["qt"])
