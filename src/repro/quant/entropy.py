"""Adaptive binary-fraction arithmetic coding.

CacheGen (SIGCOMM'24) encodes quantized KV deltas into a compact
bitstream with arithmetic coding; this module provides the codec our
CacheGen-style comparator uses.  It is the classic Witten–Neal–Cleary
integer arithmetic coder with an adaptive order-0 frequency model:
both sides start from uniform counts and update after every symbol, so
no table needs to be transmitted.

The implementation favours clarity over raw speed (it is pure Python,
driven symbol-by-symbol); the compressors keep the alphabets small
(≤ 256 symbols) and the experiment harness measures compression ratios
on bounded samples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArithmeticEncoder", "ArithmeticDecoder", "encode", "decode"]

_PRECISION = 32
_FULL = (1 << _PRECISION) - 1
_HALF = 1 << (_PRECISION - 1)
_QUARTER = 1 << (_PRECISION - 2)
_THREE_QUARTER = _HALF + _QUARTER


class _AdaptiveModel:
    """Order-0 adaptive frequency model with Laplace (add-one) counts."""

    def __init__(self, n_symbols: int) -> None:
        if n_symbols < 1:
            raise ValueError(f"alphabet must be non-empty, got {n_symbols}")
        self.counts = [1] * n_symbols
        self.total = n_symbols

    def cumulative(self, symbol: int) -> tuple[int, int]:
        """(cumulative count below symbol, count of symbol)."""
        low = sum(self.counts[:symbol])
        return low, self.counts[symbol]

    def update(self, symbol: int) -> None:
        self.counts[symbol] += 1
        self.total += 1

    def find(self, target: int) -> tuple[int, int, int]:
        """Symbol whose cumulative interval contains ``target``."""
        acc = 0
        for symbol, count in enumerate(self.counts):
            if acc + count > target:
                return symbol, acc, count
            acc += count
        raise ValueError("target outside cumulative range")  # pragma: no cover


class _BitWriter:
    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_count = 0
        self._current = 0

    def write(self, bit: int) -> None:
        self._current = (self._current << 1) | bit
        self._bit_count += 1
        if self._bit_count == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._bit_count = 0

    def getvalue(self) -> bytes:
        if self._bit_count:
            return bytes(self._bytes) + bytes(
                [self._current << (8 - self._bit_count)]
            )
        return bytes(self._bytes)


class _BitReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self) -> int:
        byte_idx, bit_idx = divmod(self._pos, 8)
        self._pos += 1
        if byte_idx >= len(self._data):
            return 0  # trailing zeros past the end of the stream
        return (self._data[byte_idx] >> (7 - bit_idx)) & 1


class ArithmeticEncoder:
    """Streaming arithmetic encoder over a fixed alphabet."""

    def __init__(self, n_symbols: int) -> None:
        self._model = _AdaptiveModel(n_symbols)
        self._writer = _BitWriter()
        self._low = 0
        self._high = _FULL
        self._pending = 0

    def encode_symbol(self, symbol: int) -> None:
        cum_low, count = self._model.cumulative(symbol)
        total = self._model.total
        span = self._high - self._low + 1
        self._high = self._low + span * (cum_low + count) // total - 1
        self._low = self._low + span * cum_low // total
        self._model.update(symbol)

        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTER:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1

    def finish(self) -> bytes:
        """Flush the final interval and return the bitstream."""
        self._pending += 1
        self._emit(0 if self._low < _QUARTER else 1)
        return self._writer.getvalue()

    def _emit(self, bit: int) -> None:
        self._writer.write(bit)
        while self._pending:
            self._writer.write(1 - bit)
            self._pending -= 1


class ArithmeticDecoder:
    """Mirror of :class:`ArithmeticEncoder`."""

    def __init__(self, data: bytes, n_symbols: int) -> None:
        self._model = _AdaptiveModel(n_symbols)
        self._reader = _BitReader(data)
        self._low = 0
        self._high = _FULL
        self._code = 0
        for _ in range(_PRECISION):
            self._code = (self._code << 1) | self._reader.read()

    def decode_symbol(self) -> int:
        total = self._model.total
        span = self._high - self._low + 1
        target = ((self._code - self._low + 1) * total - 1) // span
        symbol, cum_low, count = self._model.find(target)
        self._high = self._low + span * (cum_low + count) // total - 1
        self._low = self._low + span * cum_low // total
        self._model.update(symbol)

        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._code -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTER:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._code -= _QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
            self._code = self._code * 2 + self._reader.read()
        return symbol


def encode(symbols: np.ndarray, n_symbols: int) -> bytes:
    """Encode a 1-D array of integer symbols into a bitstream."""
    encoder = ArithmeticEncoder(n_symbols)
    for symbol in np.asarray(symbols).reshape(-1):
        encoder.encode_symbol(int(symbol))
    return encoder.finish()


def decode(data: bytes, n_values: int, n_symbols: int) -> np.ndarray:
    """Decode ``n_values`` symbols from a bitstream."""
    decoder = ArithmeticDecoder(data, n_symbols)
    return np.array([decoder.decode_symbol() for _ in range(n_values)],
                    dtype=np.int64)
