"""Comparator KV compressors: CacheGen-like, KVQuant-like, FP4/6/8.

All implement the :class:`~repro.quant.base.KVCompressor` interface so
the accuracy harness and performance model treat every method
uniformly.  HACK's own quantizer is adapted to the same interface in
:mod:`repro.quant.hack_adapter`.
"""

from .base import CompressedKV, KVCompressor, compression_ratio
from .cachegen import CacheGenCompressor
from .fp_formats import (
    FP4_E2M1,
    FP6_E3M2,
    FP8_E4M3,
    FpCastCompressor,
    MiniFloatFormat,
    cast,
    decode,
    encode,
    representable_values,
)
from .hack_adapter import HackCompressor
from .kvquant import KVQuantCompressor, kmeans_1d

__all__ = [
    "CompressedKV",
    "KVCompressor",
    "compression_ratio",
    "CacheGenCompressor",
    "KVQuantCompressor",
    "HackCompressor",
    "kmeans_1d",
    "MiniFloatFormat",
    "FP4_E2M1",
    "FP6_E3M2",
    "FP8_E4M3",
    "FpCastCompressor",
    "representable_values",
    "encode",
    "decode",
    "cast",
]
