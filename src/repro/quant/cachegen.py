"""CacheGen-style KV bitstream codec (comparator, paper §2.2).

CacheGen [Liu et al., SIGCOMM'24] compresses the KV cache for network
transfer by exploiting two distributional properties of KV tensors:

1. *token locality* — nearby tokens have similar K/V vectors, so most
   information lives in the delta between a token and a preceding
   "anchor" token;
2. *low delta entropy* — the quantized deltas concentrate around zero,
   so arithmetic coding shrinks them well below their nominal width.

This implementation follows that recipe: tokens are grouped into chunks;
the first token of each chunk is the anchor, quantized per channel at
``anchor_bits``; the remaining tokens are encoded as deltas from the
anchor, quantized at ``delta_bits`` and compressed with the adaptive
arithmetic coder of :mod:`repro.quant.entropy`.  The reported ``nbytes``
is the *actual* bitstream length plus metadata, which on realistic KV
planes lands at the ~86% compression the paper quotes for CacheGen.

Like the real CacheGen, decoding must reconstruct the full FP plane
before attention can run — the dequantization overhead HACK eliminates.
"""

from __future__ import annotations

import numpy as np

from . import entropy
from .base import CompressedKV, KVCompressor

__all__ = ["CacheGenCompressor"]

_FP16_BYTES = 2
_FP32_BYTES = 4


class CacheGenCompressor(KVCompressor):
    """Delta + arithmetic-coded KV compressor in the style of CacheGen.

    Parameters
    ----------
    chunk_size:
        Tokens per anchor group (anchor + ``chunk_size - 1`` deltas).
    anchor_bits:
        Quantization width of anchor tokens (per-channel asymmetric).
    delta_bits:
        Quantization width of the token deltas (symmetric around 0).
    delta_gain:
        Width of one delta bin in units of the channel's anchor bin.
        Bins are tied to the channel's value range (as CacheGen's
        layer-level bins are), so token locality — deltas small relative
        to the channel range — shows up as center-concentrated codes
        that the arithmetic coder shrinks far below ``delta_bits``.
    """

    name = "cachegen"

    def __init__(self, chunk_size: int = 16, anchor_bits: int = 8,
                 delta_bits: int = 4, delta_gain: float = 8.0) -> None:
        if chunk_size < 2:
            raise ValueError(f"chunk_size must be >= 2, got {chunk_size}")
        if not 2 <= anchor_bits <= 8 or not 2 <= delta_bits <= 8:
            raise ValueError("anchor_bits and delta_bits must be in [2, 8]")
        if delta_gain <= 0:
            raise ValueError(f"delta_gain must be positive, got {delta_gain}")
        self.chunk_size = chunk_size
        self.anchor_bits = anchor_bits
        self.delta_bits = delta_bits
        self.delta_gain = delta_gain

    # -- compression -------------------------------------------------------

    def compress(self, plane: np.ndarray) -> CompressedKV:
        plane = self._check_plane(plane)
        n_tokens, n_channels = plane.shape

        # Plane-level anchor grid (CacheGen sets its bins per layer
        # group, spanning the cross-channel value range).  The large
        # inter-channel spread sets the bin width; per-token deltas are
        # small relative to it, which is what makes the codes compress.
        ch_min = float(plane.min())
        ch_max = float(plane.max())
        span = ch_max - ch_min
        anchor_scale = span / ((1 << self.anchor_bits) - 1) if span else 1.0

        # Delta bins are per channel, ``delta_gain`` anchor bins wide —
        # fixed by the channel's range, *not* adapted to the deltas
        # themselves.  Smooth token sequences therefore emit codes
        # concentrated at the centre symbol, which the adaptive
        # arithmetic coder compresses to a fraction of ``delta_bits``.
        delta_scale = anchor_scale * self.delta_gain
        anchors = []
        delta_codes = []
        half = 1 << (self.delta_bits - 1)
        for start in range(0, n_tokens, self.chunk_size):
            chunk = plane[start:start + self.chunk_size]
            anchor_code = np.rint((chunk[0] - ch_min) / anchor_scale)
            anchor_code = np.clip(anchor_code, 0, (1 << self.anchor_bits) - 1)
            anchors.append(anchor_code.astype(np.uint8))
            anchor_hat = anchor_code * anchor_scale + ch_min
            deltas = chunk[1:] - anchor_hat[None, :]
            if deltas.size:
                codes = np.rint(deltas / delta_scale) + half
                codes = np.clip(codes, 0, 2 * half - 1).astype(np.int64)
                delta_codes.append(codes.reshape(-1))

        if delta_codes:
            all_codes = np.concatenate(delta_codes)
            bitstream = entropy.encode(all_codes, 1 << self.delta_bits)
            n_delta_values = all_codes.size
        else:
            bitstream = b""
            n_delta_values = 0

        n_chunks = len(anchors)
        nbytes = (
            len(bitstream)
            + n_chunks * n_channels * self.anchor_bits // 8  # anchor codes
            + 2 * _FP16_BYTES                                # plane min/scale
        )
        payload = {
            "anchors": anchors,
            "bitstream": bitstream,
            "n_delta_values": n_delta_values,
            "delta_scale": delta_scale,
            "ch_min": ch_min,
            "anchor_scale": anchor_scale,
            "n_tokens": n_tokens,
        }
        return CompressedKV(self.name, plane.shape, nbytes, payload)

    # -- decompression -----------------------------------------------------

    def decompress(self, compressed: CompressedKV) -> np.ndarray:
        payload = compressed.payload
        n_tokens, n_channels = compressed.shape
        ch_min = payload["ch_min"]
        anchor_scale = payload["anchor_scale"]
        half = 1 << (self.delta_bits - 1)

        if payload["n_delta_values"]:
            all_deltas = entropy.decode(
                payload["bitstream"], payload["n_delta_values"],
                1 << self.delta_bits,
            )
        else:
            all_deltas = np.empty(0, dtype=np.int64)

        out = np.empty((n_tokens, n_channels))
        delta_pos = 0
        for chunk_idx, start in enumerate(range(0, n_tokens, self.chunk_size)):
            end = min(start + self.chunk_size, n_tokens)
            anchor_hat = (
                payload["anchors"][chunk_idx].astype(np.float64) * anchor_scale
                + ch_min
            )
            out[start] = anchor_hat
            n_rest = end - start - 1
            if n_rest:
                take = n_rest * n_channels
                codes = all_deltas[delta_pos:delta_pos + take]
                delta_pos += take
                deltas = (codes.reshape(n_rest, n_channels) - half)
                deltas = deltas * payload["delta_scale"]
                out[start + 1:end] = anchor_hat[None, :] + deltas
        return out
