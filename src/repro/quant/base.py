"""Compressor interface shared by the comparator KV codecs.

A :class:`KVCompressor` works on a single KV plane — a ``(tokens,
channels)`` float matrix, one per (layer, K-or-V).  ``compress`` returns
a :class:`CompressedKV` carrying everything the decoder needs plus an
exact byte count (the quantity the network model charges); ``decompress``
reconstructs the approximate plane.

The two comparators (CacheGen-like and KVQuant-like) and the FP-format
casts all implement this interface, so the accuracy harness and the
performance model treat them uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["CompressedKV", "KVCompressor", "compression_ratio"]

_FP16_BYTES = 2


@dataclass
class CompressedKV:
    """Opaque compressed payload plus exact size accounting."""

    method: str
    shape: tuple[int, int]
    nbytes: int
    payload: dict[str, Any]

    @property
    def n_elements(self) -> int:
        return self.shape[0] * self.shape[1]

    def fp16_nbytes(self) -> int:
        """Size of the uncompressed FP16 plane."""
        return self.n_elements * _FP16_BYTES

    def ratio(self) -> float:
        """Compression rate in [0, 1): 0.86 means 86% smaller than FP16."""
        return 1.0 - self.nbytes / self.fp16_nbytes()


class KVCompressor(abc.ABC):
    """Interface for KV-plane compressors."""

    #: Short identifier used in reports and method registries.
    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, plane: np.ndarray) -> CompressedKV:
        """Compress one ``(tokens, channels)`` KV plane."""

    @abc.abstractmethod
    def decompress(self, compressed: CompressedKV) -> np.ndarray:
        """Reconstruct the approximate plane."""

    def roundtrip(self, plane: np.ndarray) -> tuple[np.ndarray, CompressedKV]:
        """Convenience: compress then decompress, returning both."""
        compressed = self.compress(plane)
        return self.decompress(compressed), compressed

    def _check_plane(self, plane: np.ndarray) -> np.ndarray:
        plane = np.asarray(plane, dtype=np.float64)
        if plane.ndim != 2 or plane.size == 0:
            raise ValueError(
                f"expected a non-empty (tokens, channels) matrix, got shape "
                f"{plane.shape}"
            )
        return plane


def compression_ratio(compressor: KVCompressor, plane: np.ndarray) -> float:
    """Measured compression rate of ``compressor`` on ``plane``."""
    return compressor.compress(plane).ratio()
