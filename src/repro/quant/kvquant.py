"""KVQuant-style low-bit KV quantizer (comparator, paper §2.2).

KVQuant [Hooper et al., NeurIPS'24] reaches 2-bit KV with three ideas:

1. *per-channel* key quantization and *per-token* value quantization —
   K outliers cluster in fixed channels, V outliers in individual
   tokens, so the grouping axis differs between the two planes;
2. *non-uniform quantization (nuq)* — the 2**bits code levels are
   k-means centroids fitted to the normalized value distribution
   instead of a uniform grid;
3. *outlier isolation* — a small fraction of extreme values is kept
   exact in a sparse FP16 side structure so it cannot stretch the grid.

This implementation reproduces all three at the algorithmic level.
Like the real KVQuant, decoding reconstructs the full FP plane before
attention — the per-iteration dequantization cost HACK eliminates.
"""

from __future__ import annotations

import numpy as np

from .base import CompressedKV, KVCompressor

__all__ = ["KVQuantCompressor", "kmeans_1d"]

_FP16_BYTES = 2
_FP32_BYTES = 4
_INDEX_BYTES = 4


def kmeans_1d(values: np.ndarray, k: int, n_iter: int = 25,
              seed: int = 0) -> np.ndarray:
    """Lloyd's k-means on scalars; returns ``k`` sorted centroids.

    Initialized from evenly spaced quantiles, which is deterministic and
    close to optimal for the unimodal distributions KV planes produce.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if values.size == 0:
        raise ValueError("cannot fit centroids to an empty sample")
    quantiles = (np.arange(k) + 0.5) / k
    centroids = np.quantile(values, quantiles)
    for _ in range(n_iter):
        assignment = np.argmin(np.abs(values[:, None] - centroids[None, :]),
                               axis=1)
        # Lloyd's update for every centroid at once: per-cluster sums
        # and counts via bincount; empty clusters keep their centroid.
        sums = np.bincount(assignment, weights=values, minlength=k)
        counts = np.bincount(assignment, minlength=k)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied]
    return np.sort(centroids)


class KVQuantCompressor(KVCompressor):
    """Per-channel/per-token nuq quantizer in the style of KVQuant.

    Parameters
    ----------
    bits:
        Code width (2 in the paper's comparison).
    axis:
        Normalization axis: ``"channel"`` (over tokens, for K planes) or
        ``"token"`` (over channels, for V planes).
    outlier_fraction:
        Fraction of elements kept exact in the sparse FP16 store.
    nuq:
        Fit k-means code levels instead of a uniform grid.
    sample_limit:
        Cap on the number of values used to fit the nuq codebook.
    calibration_fraction:
        Fraction of leading tokens whose statistics define the
        quantization grid, mirroring real KVQuant's *offline
        calibration*: ranges and codebooks come from a calibration set,
        so later (out-of-distribution) tokens can fall outside them.
        1.0 uses the whole plane (an idealized online variant).
    """

    name = "kvquant"

    def __init__(self, bits: int = 2, axis: str = "channel",
                 outlier_fraction: float = 0.01, nuq: bool = True,
                 sample_limit: int = 8192, seed: int = 0,
                 calibration_fraction: float = 0.5) -> None:
        if not 1 <= bits <= 8:
            raise ValueError(f"bits must be in [1, 8], got {bits}")
        if axis not in ("channel", "token"):
            raise ValueError(f"axis must be 'channel' or 'token', got {axis!r}")
        if not 0 <= outlier_fraction < 0.5:
            raise ValueError(
                f"outlier_fraction must be in [0, 0.5), got {outlier_fraction}"
            )
        if not 0 < calibration_fraction <= 1:
            raise ValueError(
                f"calibration_fraction must be in (0, 1], got "
                f"{calibration_fraction}"
            )
        self.bits = bits
        self.axis = axis
        self.outlier_fraction = outlier_fraction
        self.nuq = nuq
        self.sample_limit = sample_limit
        self.seed = seed
        self.calibration_fraction = calibration_fraction

    # -- compression -------------------------------------------------------

    def compress(self, plane: np.ndarray) -> CompressedKV:
        plane = self._check_plane(plane)
        work = plane.copy()

        # 1. Outlier isolation: extreme |value - median| entries go to a
        #    sparse exact store and are masked to the median for fitting.
        outlier_idx, outlier_val = self._extract_outliers(work)

        # 2. Per-group normalization to [0, 1].  Per-channel grids come
        #    from the leading `calibration_fraction` of tokens (the
        #    offline-calibration behaviour); per-token grids are always
        #    computed from the token itself.
        reduce_axis = 0 if self.axis == "channel" else 1
        if self.axis == "channel" and self.calibration_fraction < 1.0:
            n_cal = max(1, int(round(self.calibration_fraction * work.shape[0])))
            stats_view = work[:n_cal]
        else:
            stats_view = work
        mins = stats_view.min(axis=reduce_axis, keepdims=True)
        maxs = stats_view.max(axis=reduce_axis, keepdims=True)
        spans = np.where(maxs - mins == 0, 1.0, maxs - mins)
        normalized = np.clip((work - mins) / spans, 0.0, 1.0)

        # 3. Code levels: nuq centroids or a uniform grid.
        k = 1 << self.bits
        if self.nuq:
            sample = normalized.reshape(-1)
            if sample.size > self.sample_limit:
                rng = np.random.default_rng(self.seed)
                sample = rng.choice(sample, size=self.sample_limit,
                                    replace=False)
            levels = kmeans_1d(sample, k)
        else:
            levels = np.linspace(0.0, 1.0, k)

        codes = np.argmin(
            np.abs(normalized[..., None] - levels[None, None, :]), axis=-1
        ).astype(np.uint8)

        n_groups = mins.size
        nbytes = (
            plane.size * self.bits // 8
            + 2 * n_groups * _FP16_BYTES            # per-group min/span
            + k * _FP32_BYTES                       # codebook
            + outlier_idx.shape[0] * (_INDEX_BYTES + _FP16_BYTES)
        )
        payload = {
            "codes": codes,
            "levels": levels,
            "mins": mins,
            "spans": spans,
            "outlier_idx": outlier_idx,
            "outlier_val": outlier_val,
        }
        return CompressedKV(self.name, plane.shape, nbytes, payload)

    def decompress(self, compressed: CompressedKV) -> np.ndarray:
        payload = compressed.payload
        normalized = payload["levels"][payload["codes"]]
        out = normalized * payload["spans"] + payload["mins"]
        idx = payload["outlier_idx"]
        if idx.size:
            out[idx[:, 0], idx[:, 1]] = payload["outlier_val"]
        return out

    # -- helpers -----------------------------------------------------------

    def _extract_outliers(self, work: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Remove the most extreme entries in place; return their coords/values."""
        n_outliers = int(round(self.outlier_fraction * work.size))
        if n_outliers == 0:
            return np.empty((0, 2), dtype=np.int64), np.empty(0)
        median = np.median(work)
        deviation = np.abs(work - median)
        flat_order = np.argsort(deviation, axis=None)[::-1][:n_outliers]
        coords = np.stack(np.unravel_index(flat_order, work.shape), axis=1)
        values = work[coords[:, 0], coords[:, 1]].copy()
        work[coords[:, 0], coords[:, 1]] = median
        return coords, values
