"""KV cache that stores compressor-roundtripped values (comparator path).

This adapts any :class:`~repro.quant.base.KVCompressor` to the decode
cache interface used by :class:`repro.model.transformer.Transformer`,
modelling how CacheGen/KVQuant-style systems behave end to end:

* prefill K/V planes are compressed once (the network handoff) and the
  decode instance works with the *reconstructed* values;
* decode-time tokens are buffered in FP16 and compressed in groups of
  ``group_size`` tokens (the KIVI/KVQuant deployment pattern — single
  tokens carry no group statistics to quantize against);
* every ``attention`` call charges the full-cache dequantization cost,
  the overhead these systems pay per decode iteration (§2.2).
"""

from __future__ import annotations

import numpy as np

from ..core import costs
from ..core.attention import softmax
from ..core.kv_cache import CacheLedger
from .base import KVCompressor

__all__ = ["RoundtripKVCache"]

_FP16_BYTES = 2


class RoundtripKVCache:
    """Decode cache backed by a pair of plane compressors.

    Parameters
    ----------
    head_dim:
        Per-head channel count.
    k_compressor, v_compressor:
        Compressors for K and V planes (may be the same object).
    group_size:
        Decode tokens buffered before being compressed as a plane.
    """

    def __init__(self, head_dim: int, k_compressor: KVCompressor,
                 v_compressor: KVCompressor, group_size: int = 16) -> None:
        if head_dim <= 0:
            raise ValueError(f"head_dim must be positive, got {head_dim}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.head_dim = head_dim
        self.k_compressor = k_compressor
        self.v_compressor = v_compressor
        self.group_size = group_size
        self.ledger = CacheLedger()
        self._k_hat: list[np.ndarray] = []   # reconstructed planes
        self._v_hat: list[np.ndarray] = []
        self._pending_k: list[np.ndarray] = []
        self._pending_v: list[np.ndarray] = []
        self._compressed_nbytes = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    # -- appends -------------------------------------------------------------

    def append(self, k_vec: np.ndarray, v_vec: np.ndarray) -> None:
        """Buffer one token; compress the buffer when the group fills."""
        k_vec = self._check(k_vec)
        v_vec = self._check(v_vec)
        self._pending_k.append(k_vec)
        self._pending_v.append(v_vec)
        self._length += 1
        if len(self._pending_k) >= self.group_size:
            self._flush()

    def append_bulk(self, k: np.ndarray, v: np.ndarray) -> None:
        """Compress a whole plane at once (the prefill handoff)."""
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if k.shape != v.shape or k.ndim != 2 or k.shape[1] != self.head_dim:
            raise ValueError(
                f"k and v must both be (L, {self.head_dim}), got "
                f"{k.shape} and {v.shape}"
            )
        if k.shape[0] == 0:
            return
        k_hat, k_comp = self.k_compressor.roundtrip(k)
        v_hat, v_comp = self.v_compressor.roundtrip(v)
        self._k_hat.append(k_hat)
        self._v_hat.append(v_hat)
        self._compressed_nbytes += k_comp.nbytes + v_comp.nbytes
        self.ledger.quant_flops += costs.quantize_flops(k.size + v.size)
        self._length += k.shape[0]

    def _flush(self) -> None:
        self.append_bulk(np.array(self._pending_k), np.array(self._pending_v))
        self._length -= len(self._pending_k)  # append_bulk re-counted them
        self._pending_k = []
        self._pending_v = []

    # -- attention -------------------------------------------------------------

    def attention(self, q_vec: np.ndarray) -> np.ndarray:
        """Dequantize the whole cache, then exact FP attention."""
        if not self._length:
            raise ValueError("attention on an empty cache")
        q = self._check(q_vec)[None, :]
        k, v = self.materialize()
        self.ledger.dequant_flops += costs.kv_dequant_flops_per_iter(
            self.head_dim, self._length
        )
        scores = (q @ k.T) / np.sqrt(self.head_dim)
        probs = softmax(scores, axis=-1)
        out = probs @ v
        self.ledger.fp_matmul_flops += costs.attention_flops(
            1, self._length, self.head_dim
        )
        self.ledger.decode_iterations += 1
        return out[0]

    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstructed (K̂, V̂) including the FP16 pending buffer."""
        k_parts = list(self._k_hat)
        v_parts = list(self._v_hat)
        if self._pending_k:
            k_parts.append(np.array(self._pending_k))
            v_parts.append(np.array(self._pending_v))
        return np.concatenate(k_parts, axis=0), np.concatenate(v_parts, axis=0)

    # -- accounting -------------------------------------------------------------

    def kv_nbytes(self) -> int:
        """Compressed bytes plus the FP16 pending buffer."""
        pending = 2 * len(self._pending_k) * self.head_dim * _FP16_BYTES
        return self._compressed_nbytes + pending

    def _check(self, vec: np.ndarray) -> np.ndarray:
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (self.head_dim,):
            raise ValueError(
                f"expected shape ({self.head_dim},), got {vec.shape}"
            )
        return vec
