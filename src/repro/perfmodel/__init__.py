"""Analytic performance model: prefill, decode, transfer, calibration."""

from .calibration import Calibration, DEFAULT_CALIBRATION, calibrated
from .decode import (
    BatchCostModel,
    IterationTiming,
    RequestDecodeCosts,
    SpanTotals,
    iteration_latency,
    param_read_time,
    request_decode_costs,
)
from .prefill import PrefillBreakdown, attention_rate_tflops, prefill_time
from .transfer import kv_wire_bytes, make_network_model, transfer_time

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "calibrated",
    "PrefillBreakdown",
    "prefill_time",
    "attention_rate_tflops",
    "RequestDecodeCosts",
    "IterationTiming",
    "BatchCostModel",
    "SpanTotals",
    "request_decode_costs",
    "iteration_latency",
    "param_read_time",
    "kv_wire_bytes",
    "transfer_time",
    "make_network_model",
]
