"""Calibration constants for the analytic performance model.

These constants derate peak hardware numbers to achievable rates.  They
are set **once, globally** so that the *baseline* disaggregated system
reproduces the time-ratio decomposition the paper measures in §2
(KV transmission up to ~42% of JCT on low-bandwidth prefill instances,
prefill 14–46%, decode 40–83%, KV memory access 16–33%, dequantization
17–38% for CacheGen/KVQuant).  Every *comparison between methods* then
emerges from the model — HACK's gains are computed from its transfer
size, INT8 rates and Eq. 4 costs, never asserted.

Rationale for the defaults:

* ``linear_mfu`` — large dense matmuls on tensor cores typically reach
  40–50% of peak in serving workloads.
* ``attention_mfu`` — FlashAttention-style kernels are far less
  efficient than dense GEMMs at long context (softmax, masking, memory
  traffic); ≈8% of peak matches measured long-context numbers on
  A10G/T4-class hardware.
* ``int8_attention_gain`` — INT8 tensor cores double matmul throughput,
  halve operand traffic, and HACK's fusion removes separate
  quantization passes; combined gain ≈2.4× where supported (1.0 on
  V100, which lacks INT8 tensor cores).
* ``partition_overhead`` — per-partition fixed work in the fused kernel
  (Eq. 4 correction launches, metadata loads); efficiency is
  ``Π / (Π + partition_overhead)`` — the source of Table 8's JCT growth
  at small Π.
* ``param_bw_eff`` vs ``kv_bw_eff`` — parameters stream sequentially
  (~70% of HBM bandwidth); paged KV blocks scatter (~20%).
  Dequantization and quantization are streaming passes.
* ``net_efficiency`` — the paper sends KV with NCCL over cloud
  Ethernet/TCP (they patched DistServe/SplitWise for Ethernet, §7.1);
  single-flow TCP goodput on ENA-class NICs is ≈25% of line rate.
* ``dequant_traffic_factor`` — dequantization reads codes and writes an
  FP16 copy: ≈1.15× the FP16 KV bytes of streaming traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Calibration", "DEFAULT_CALIBRATION", "calibrated"]


@dataclass(frozen=True)
class Calibration:
    """Global efficiency constants (see module docstring)."""

    # Prefill (compute-bound).
    linear_mfu: float = 0.45
    attention_mfu: float = 0.08
    int8_attention_gain: float = 2.4
    partition_overhead: float = 18.0
    pp_efficiency: float = 0.88
    fp8_sim_attention_speedup: float = 2.0

    # Decode (memory-bound).  param_bw_eff sets the per-iteration floor:
    # 141 GB of Llama-70B weights over 4×A100 at 29% ≈ 60 ms — a
    # realistic per-token latency for TP-4 serving of a 70B model.
    param_bw_eff: float = 0.29       # weight streaming incl. TP sync
    #: Paged KV blocks are read via scattered gather across the paged
    #: cache — single-digit percent of peak HBM bandwidth is what paged
    #: attention kernels achieve at long context.  This is the §2.1
    #: "memory access latency for KV up to 33.1% of JCT" driver.
    kv_bw_eff: float = 0.02
    #: Dequantization decodes scattered code pages (bitstream decode /
    #: codebook gather) and writes an FP16 copy.
    dequant_bw_eff: float = 0.05
    stream_bw_eff: float = 0.70      # quantization streaming passes
    decode_compute_mfu: float = 0.02  # skinny (M=1) decode matmuls
    vector_tflops_fraction: float = 0.05
    decode_base_overhead_s: float = 0.004

    # Network.
    net_efficiency: float = 0.15     # NCCL over cloud Ethernet/TCP
    net_latency_s: float = 0.002

    # Method-specific overhead factors.
    dequant_traffic_factor: float = 1.2
    quantize_traffic_factor: float = 1.10
    #: HACK/SE ablation: recomputing the Eq. 4 sums re-reads and unpacks
    #: the whole quantized KV — ≈ one dequant-like pass.
    nose_traffic_factor: float = 1.1
    #: HACK/RQE ablation: per-request per-iteration cost of the
    #: dequantize → requantize pass over V's last block (kernel-launch
    #: dominated; scales with batch size at the iteration level).
    requant_per_request_s: float = 5e-4

    def partition_efficiency(self, partition_size: int) -> float:
        """Fused-kernel efficiency as a function of Π (Table 8 driver)."""
        if partition_size <= 0:
            raise ValueError("partition_size must be positive")
        return partition_size / (partition_size + self.partition_overhead)

    def __post_init__(self) -> None:
        for field_name in ("linear_mfu", "attention_mfu", "param_bw_eff",
                           "kv_bw_eff", "dequant_bw_eff", "stream_bw_eff",
                           "net_efficiency", "pp_efficiency"):
            value = getattr(self, field_name)
            if not 0 < value <= 1:
                raise ValueError(f"{field_name} must be in (0, 1], got {value}")


DEFAULT_CALIBRATION = Calibration()


def calibrated(**overrides) -> Calibration:
    """A calibration with selected constants overridden."""
    return replace(DEFAULT_CALIBRATION, **overrides)
