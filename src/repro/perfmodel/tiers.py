"""Analytic access timing for KV-store tiers (companion of transfer.py).

The KV-store subsystem (:mod:`repro.kvstore`) models a three-tier cache
hierarchy — GPU HBM, host DRAM, pooled store — each with its own read
and write bandwidth.  This module is the single place where tier byte
counts turn into seconds, mirroring how :mod:`repro.perfmodel.transfer`
owns the NIC path: the store charges every read/write through
:func:`tier_access_time`, and :func:`prefix_read_time` gives the
analytic cost of re-reading a cached prefix under a method's wire
format (what the engine pays instead of prefill compute on a hit).

Tier bandwidths are **gigabytes per second** (memory-system convention;
the NIC path's ``network_gbps`` stays gigabits as before).  Each tier
adds a fixed setup latency — DRAM staging crosses PCIe, the pooled
store an RDMA round trip — so tiny reads do not come out implausibly
free.
"""

from __future__ import annotations

from ..methods.base import Method
from ..model.config import ModelSpec

__all__ = ["TIER_LATENCY_S", "tier_access_time", "prefix_read_time"]

#: Per-access setup latency by tier name (seconds): an HBM pointer
#: chase, a PCIe doorbell + DMA setup, an RDMA get round trip.
TIER_LATENCY_S: dict[str, float] = {
    "hbm": 1e-6,
    "dram": 10e-6,
    "pool": 200e-6,
}


def tier_access_time(nbytes: float, bandwidth_gb_s: float,
                     latency_s: float = 0.0) -> float:
    """Seconds to move ``nbytes`` at a tier's bandwidth (GB/s)."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if bandwidth_gb_s <= 0:
        raise ValueError(
            f"tier bandwidth must be positive, got {bandwidth_gb_s}"
        )
    if latency_s < 0:
        raise ValueError(f"latency must be non-negative, got {latency_s}")
    return latency_s + nbytes / (bandwidth_gb_s * 1e9)


def prefix_read_time(spec: ModelSpec, method: Method, tokens: int,
                     bandwidth_gb_s: float,
                     latency_s: float = 0.0) -> float:
    """Seconds to read a ``tokens``-long cached prefix of ``method``-
    compressed KV from a tier — the cost a prefix-cache hit pays in
    place of recomputing those tokens' prefill."""
    if tokens < 0:
        raise ValueError(f"tokens must be non-negative, got {tokens}")
    nbytes = tokens * spec.kv_bytes_per_token(method.kv_wire_bytes_per_value)
    return tier_access_time(nbytes, bandwidth_gb_s, latency_s)
