"""Decode-stage timing model (memory-bound roofline with batching).

A decode replica runs continuous batching: every iteration produces one
token for each in-flight request.  The iteration latency is

    base overhead                      (scheduler + kernel launches)
  + parameter read                     (whole model, shared by the batch)
  + Σ over requests of:
      KV read          — the request's resident KV bytes over HBM
      attention compute — two skinny matmuls (INT8 for HACK)
      dequantization   — comparators: full-KV dequant (§2.2)
      sum recompute    — HACK/SE ablation: re-reads the quantized KV
      requantization   — HACK/RQE ablation: last-V-block round trip
      Eq. 4 corrections — HACK: the ``(9·N·P + …)`` terms (§5.2–5.3)
      FP16 tail        — HACK+RQE: the ≤Π-token FP16 V block matmul

Per-request JCT decomposition attributes dequant/approx to their own
buckets and everything else to "decode", matching Fig. 10's buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.parallelism import ReplicaResources
from ..methods.base import FP16_BYTES, Method
from ..model.config import ModelSpec
from .calibration import Calibration, DEFAULT_CALIBRATION

__all__ = ["RequestDecodeCosts", "IterationTiming", "param_read_time",
           "request_decode_costs", "iteration_latency"]


@dataclass(frozen=True)
class RequestDecodeCosts:
    """Per-request, per-iteration cost components (seconds)."""

    kv_read_s: float
    compute_s: float
    dequant_s: float
    approx_s: float
    requant_s: float

    @property
    def total_s(self) -> float:
        return (self.kv_read_s + self.compute_s + self.dequant_s
                + self.approx_s + self.requant_s)


@dataclass(frozen=True)
class IterationTiming:
    """One decode iteration of a batch."""

    latency_s: float
    shared_s: float                      # base overhead + parameter read
    per_request: tuple[RequestDecodeCosts, ...]


def param_read_time(spec: ModelSpec, replica: ReplicaResources,
                    calib: Calibration = DEFAULT_CALIBRATION) -> float:
    """Seconds to stream the parameters once (shared across the batch)."""
    bw = replica.mem_bw_gbps * 1e9 * calib.param_bw_eff
    return spec.param_bytes() / bw


def request_decode_costs(
    spec: ModelSpec,
    replica: ReplicaResources,
    method: Method,
    ctx_len: int,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> RequestDecodeCosts:
    """Per-iteration costs of one request with ``ctx_len`` cached tokens."""
    if ctx_len < 1:
        raise ValueError(f"ctx_len must be >= 1, got {ctx_len}")
    kv_bw = replica.mem_bw_gbps * 1e9 * calib.kv_bw_eff
    stream_bw = replica.mem_bw_gbps * 1e9 * calib.stream_bw_eff
    kv_fp16_bytes = ctx_len * spec.kv_bytes_per_token(FP16_BYTES)
    kv_resident_bytes = ctx_len * spec.kv_bytes_per_token(
        method.kv_mem_bytes_per_value
    )

    kv_read_s = kv_resident_bytes / kv_bw

    # Attention compute: Q·Kᵀ and P·V over the cached context for every
    # query head.  Skinny (M=1) matmuls run at the decode MFU.
    attn_flops = 4.0 * ctx_len * spec.n_heads * spec.head_dim * spec.n_layers
    if method.int8_attention and replica.supports_int8:
        rate = (replica.int8_tops * 1e12 * calib.decode_compute_mfu
                * method.int_compute_gain
                * calib.partition_efficiency(method.partition_size))
    elif method.fp8_attention_sim:
        rate = (replica.fp16_tflops * 1e12 * calib.decode_compute_mfu
                * calib.fp8_sim_attention_speedup)
    else:
        rate = replica.fp16_tflops * 1e12 * calib.decode_compute_mfu
    compute_s = attn_flops / rate

    if method.approx_per_iter and method.requant_elimination:
        # FP16 matmul over the ≤Π-token tail of V (Π/2 in expectation).
        tail_tokens = method.partition_size / 2.0
        tail_flops = (2.0 * tail_tokens * spec.n_heads * spec.head_dim
                      * spec.n_layers)
        compute_s += tail_flops / (replica.fp16_tflops * 1e12
                                   * calib.decode_compute_mfu)

    dequant_bw = replica.mem_bw_gbps * 1e9 * calib.dequant_bw_eff
    dequant_s = 0.0
    if method.dequant_per_iter:
        # Reads scattered code pages, decodes them (bitstream / gather),
        # and writes an FP16 copy — charged at the dequantization rate.
        dequant_s = (kv_fp16_bytes * calib.dequant_traffic_factor
                     * method.dequant_traffic_scale / dequant_bw)

    approx_s = 0.0
    requant_s = 0.0
    if method.approx_per_iter:
        approx_s = _approximation_time(spec, replica, method, ctx_len, calib)
        if not method.summation_elimination:
            # Recomputing Σb' re-reads and unpacks the quantized KV.
            approx_s += kv_fp16_bytes * calib.nose_traffic_factor / dequant_bw
        if not method.requant_elimination:
            requant_s = calib.requant_per_request_s

    return RequestDecodeCosts(kv_read_s=kv_read_s, compute_s=compute_s,
                              dequant_s=dequant_s, approx_s=approx_s,
                              requant_s=requant_s)


def iteration_latency(
    spec: ModelSpec,
    replica: ReplicaResources,
    method: Method,
    ctx_lens: list[int],
    calib: Calibration = DEFAULT_CALIBRATION,
) -> IterationTiming:
    """Latency of one continuous-batching iteration over ``ctx_lens``."""
    if not ctx_lens:
        raise ValueError("ctx_lens must contain at least one request")
    shared = calib.decode_base_overhead_s + param_read_time(spec, replica, calib)
    per_request = tuple(
        request_decode_costs(spec, replica, method, ctx, calib)
        for ctx in ctx_lens
    )
    latency = shared + sum(costs.total_s for costs in per_request)
    return IterationTiming(latency_s=latency, shared_s=shared,
                           per_request=per_request)


def _approximation_time(spec, replica, method, ctx_len, calib):
    """Eq. 4 correction time with the per-partition count (§5.2–§5.3).

    Per layer and query head: Q·Kᵀ corrections cost ``9·L·P_k + d_h``
    (``P_k = d_h/Π`` head-dim partitions) and P·V corrections cost
    ``9·d_h·P_v + L`` (``P_v = L/Π`` sequence partitions).  Runs on the
    vector units, not tensor cores.
    """
    pi = method.partition_size
    p_k = max(1, math.ceil(spec.head_dim / pi))
    p_v = max(1, math.ceil(ctx_len / pi))
    per_head = (9.0 * ctx_len * p_k + spec.head_dim
                + 9.0 * spec.head_dim * p_v + ctx_len)
    flops = per_head * spec.n_heads * spec.n_layers
    rate = replica.fp16_tflops * 1e12 * calib.vector_tflops_fraction
    return flops / rate
