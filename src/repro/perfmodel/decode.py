"""Decode-stage timing model (memory-bound roofline with batching).

A decode replica runs continuous batching: every iteration produces one
token for each in-flight request.  The iteration latency is

    base overhead                      (scheduler + kernel launches)
  + parameter read                     (whole model, shared by the batch)
  + Σ over requests of:
      KV read          — the request's resident KV bytes over HBM
      attention compute — two skinny matmuls (INT8 for HACK)
      dequantization   — comparators: full-KV dequant (§2.2)
      sum recompute    — HACK/SE ablation: re-reads the quantized KV
      requantization   — HACK/RQE ablation: last-V-block round trip
      Eq. 4 corrections — HACK: the ``(9·N·P + …)`` terms (§5.2–5.3)
      FP16 tail        — HACK+RQE: the ≤Π-token FP16 V block matmul

All method/spec/calibration-dependent coefficients are computed once in
a :class:`BatchCostModel`; every per-request cost is then affine in the
context length except the ``ceil(ctx/Π)`` staircase of the Eq. 4
corrections.  That structure gives a *closed form* for the summed
latency of a run of iterations between batch-composition changes
(:meth:`BatchCostModel.span`), which is what lets the simulator
fast-forward whole decode spans in one event instead of stepping
token by token.

Per-request JCT decomposition attributes dequant/approx to their own
buckets and everything else to "decode", matching Fig. 10's buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..cluster.parallelism import ReplicaResources
from ..methods.base import FP16_BYTES, Method
from ..model.config import ModelSpec
from .calibration import Calibration, DEFAULT_CALIBRATION

__all__ = ["RequestDecodeCosts", "IterationTiming", "SpanTotals",
           "BatchCostModel", "param_read_time", "request_decode_costs",
           "iteration_latency"]


@dataclass(frozen=True)
class RequestDecodeCosts:
    """Per-request, per-iteration cost components (seconds)."""

    kv_read_s: float
    compute_s: float
    dequant_s: float
    approx_s: float
    requant_s: float

    @property
    def total_s(self) -> float:
        return (self.kv_read_s + self.compute_s + self.dequant_s
                + self.approx_s + self.requant_s)


@dataclass(frozen=True)
class IterationTiming:
    """One decode iteration of a batch."""

    latency_s: float
    shared_s: float                      # base overhead + parameter read
    per_request: tuple[RequestDecodeCosts, ...]


@dataclass(frozen=True)
class SpanTotals:
    """Closed-form totals of ``k`` consecutive iterations of one batch.

    ``decode_s``/``dequant_s``/``approx_s`` are the batch-wide bucket
    sums over the whole span — exactly what each participating request
    accrues to its Fig. 10 buckets (every request waits through the
    whole batch's iteration, so batch totals, not per-request shares,
    are what accumulate).  ``latency_s = decode_s + dequant_s +
    approx_s`` is the wall-clock length of the span.
    """

    k: int                               # iterations covered
    batch: int                           # requests in the batch
    latency_s: float
    decode_s: float                      # shared + KV read + compute + requant
    dequant_s: float
    approx_s: float
    kv_read_s: float                     # subset of decode_s: KV HBM reads


def param_read_time(spec: ModelSpec, replica: ReplicaResources,
                    calib: Calibration = DEFAULT_CALIBRATION) -> float:
    """Seconds to stream the parameters once (shared across the batch)."""
    bw = replica.mem_bw_gbps * 1e9 * calib.param_bw_eff
    return spec.param_bytes() / bw


class BatchCostModel:
    """Decode cost model with all coefficients precomputed.

    Construct once per (spec, replica, method, calibration) — e.g. once
    per :class:`~repro.sim.engine.Simulator` — and evaluate per-request
    costs, per-iteration batch latencies, and closed-form span totals
    without re-deriving any bandwidth/rate products.

    Every per-iteration cost component is affine in the context length,
    ``a·ctx + b``, except the Eq. 4 corrections which add a staircase
    term ``c·ceil(ctx/Π)``; both sum in closed form over a span of
    iterations where ``ctx`` advances by one per iteration.
    """

    def __init__(self, spec: ModelSpec, replica: ReplicaResources,
                 method: Method,
                 calib: Calibration = DEFAULT_CALIBRATION) -> None:
        self.spec = spec
        self.replica = replica
        self.method = method
        self.calib = calib
        self.shared_s = (calib.decode_base_overhead_s
                         + param_read_time(spec, replica, calib))

        self._kv_bw = replica.mem_bw_gbps * 1e9 * calib.kv_bw_eff
        self._dequant_bw = replica.mem_bw_gbps * 1e9 * calib.dequant_bw_eff
        self._kv_fp16_bpt = spec.kv_bytes_per_token(FP16_BYTES)
        self._kv_resident_bpt = spec.kv_bytes_per_token(
            method.kv_mem_bytes_per_value
        )

        # Attention compute: Q·Kᵀ and P·V over the cached context for
        # every query head.  Skinny (M=1) matmuls run at the decode MFU.
        if method.int8_attention and replica.supports_int8:
            self._attn_rate = (replica.int8_tops * 1e12
                               * calib.decode_compute_mfu
                               * method.int_compute_gain
                               * calib.partition_efficiency(
                                   method.partition_size))
        elif method.fp8_attention_sim:
            self._attn_rate = (replica.fp16_tflops * 1e12
                               * calib.decode_compute_mfu
                               * calib.fp8_sim_attention_speedup)
        else:
            self._attn_rate = (replica.fp16_tflops * 1e12
                               * calib.decode_compute_mfu)

        # FP16 matmul over the ≤Π-token tail of V (Π/2 in expectation),
        # paid only by HACK+RQE.
        self._tail_s = 0.0
        if method.approx_per_iter and method.requant_elimination:
            tail_tokens = method.partition_size / 2.0
            tail_flops = (2.0 * tail_tokens * spec.n_heads * spec.head_dim
                          * spec.n_layers)
            self._tail_s = tail_flops / (replica.fp16_tflops * 1e12
                                         * calib.decode_compute_mfu)

        self._pi = method.partition_size
        self._p_k = max(1, math.ceil(spec.head_dim / self._pi))
        self._vector_rate = (replica.fp16_tflops * 1e12
                             * calib.vector_tflops_fraction)
        self._requant_s = (calib.requant_per_request_s
                           if method.approx_per_iter
                           and not method.requant_elimination else 0.0)

        # Affine span coefficients: per-iteration per-request cost is
        # a·ctx + b (+ c·ceil(ctx/Π) for the Eq. 4 corrections).
        self._a_kv = self._kv_resident_bpt / self._kv_bw
        self._a_cmp = (4.0 * spec.n_heads * spec.head_dim * spec.n_layers
                       / self._attn_rate)
        self._b_cmp = self._tail_s
        self._a_dq = 0.0
        if method.dequant_per_iter:
            self._a_dq = (self._kv_fp16_bpt * calib.dequant_traffic_factor
                          * method.dequant_traffic_scale / self._dequant_bw)
        self._a_ap = self._b_ap = self._c_ap = 0.0
        if method.approx_per_iter:
            head_factor = spec.n_heads * spec.n_layers
            self._a_ap = (9.0 * self._p_k + 1.0) * head_factor \
                / self._vector_rate
            self._b_ap = spec.head_dim * head_factor / self._vector_rate
            self._c_ap = 9.0 * spec.head_dim * head_factor \
                / self._vector_rate
            if not method.summation_elimination:
                # Recomputing Σb' re-reads and unpacks the quantized KV.
                self._a_ap += (self._kv_fp16_bpt * calib.nose_traffic_factor
                               / self._dequant_bw)

    # -- per-iteration (token-path) evaluation ----------------------------

    def request_costs(self, ctx_len: int) -> RequestDecodeCosts:
        """Per-iteration costs of one request with ``ctx_len`` cached
        tokens."""
        if ctx_len < 1:
            raise ValueError(f"ctx_len must be >= 1, got {ctx_len}")
        kv_fp16_bytes = ctx_len * self._kv_fp16_bpt
        kv_read_s = (ctx_len * self._kv_resident_bpt) / self._kv_bw

        attn_flops = 4.0 * ctx_len * self.spec.n_heads \
            * self.spec.head_dim * self.spec.n_layers
        compute_s = attn_flops / self._attn_rate + self._tail_s

        dequant_s = 0.0
        if self.method.dequant_per_iter:
            # Reads scattered code pages, decodes them (bitstream /
            # gather), and writes an FP16 copy — charged at the
            # dequantization rate.
            dequant_s = (kv_fp16_bytes * self.calib.dequant_traffic_factor
                         * self.method.dequant_traffic_scale
                         / self._dequant_bw)

        approx_s = 0.0
        if self.method.approx_per_iter:
            approx_s = self._approximation_time(ctx_len)
            if not self.method.summation_elimination:
                approx_s += (kv_fp16_bytes * self.calib.nose_traffic_factor
                             / self._dequant_bw)

        return RequestDecodeCosts(kv_read_s=kv_read_s, compute_s=compute_s,
                                  dequant_s=dequant_s, approx_s=approx_s,
                                  requant_s=self._requant_s)

    def iteration(self, ctx_lens: list[int]) -> IterationTiming:
        """Latency of one continuous-batching iteration over
        ``ctx_lens`` (exact legacy token-path semantics)."""
        if not len(ctx_lens):
            raise ValueError("ctx_lens must contain at least one request")
        per_request = tuple(self.request_costs(ctx) for ctx in ctx_lens)
        latency = self.shared_s + sum(c.total_s for c in per_request)
        return IterationTiming(latency_s=latency, shared_s=self.shared_s,
                               per_request=per_request)

    def _approximation_time(self, ctx_len: int) -> float:
        """Eq. 4 correction time with the per-partition count (§5.2–§5.3).

        Per layer and query head: Q·Kᵀ corrections cost ``9·L·P_k +
        d_h`` (``P_k = d_h/Π`` head-dim partitions) and P·V corrections
        cost ``9·d_h·P_v + L`` (``P_v = L/Π`` sequence partitions).
        Runs on the vector units, not tensor cores.
        """
        p_v = max(1, math.ceil(ctx_len / self._pi))
        per_head = (9.0 * ctx_len * self._p_k + self.spec.head_dim
                    + 9.0 * self.spec.head_dim * p_v + ctx_len)
        flops = per_head * self.spec.n_heads * self.spec.n_layers
        return flops / self._vector_rate

    # -- closed-form span (fast-path) evaluation --------------------------

    def _stair_cumsum(self, n: np.ndarray) -> np.ndarray:
        """Vectorized ``f(n) = Σ_{c=1}^{n} ceil(c/Π)`` (exact integers)."""
        q, r = np.divmod(n, self._pi)
        return self._pi * (q * (q + 1)) // 2 + r * (q + 1)

    def span(self, ctx0, k: int) -> SpanTotals:
        """Totals of ``k`` consecutive iterations of one fixed batch.

        ``ctx0`` holds each request's context length at the span's first
        iteration; request ``j``'s context at iteration ``i`` is
        ``ctx0[j] + i``.  All context sums are exact integers; each cost
        component is its affine coefficient times those sums, so the
        result matches the iterated per-token evaluation to FP rounding.
        ``span(ctx_lens, 1)`` is the vectorized one-iteration batch
        latency.
        """
        ctx0 = np.ascontiguousarray(ctx0, dtype=np.int64)
        if ctx0.size == 0:
            raise ValueError("span needs at least one request")
        if k < 1:
            raise ValueError(f"span length must be >= 1, got {k}")
        if int(ctx0.min()) < 1:
            raise ValueError("context lengths must be >= 1")
        batch = int(ctx0.size)
        n_costs = batch * k
        # Σ_j Σ_i (ctx0_j + i) — exact in Python ints.
        s1 = k * int(ctx0.sum()) + batch * (k * (k - 1) // 2)
        kv_read = self._a_kv * s1
        compute = self._a_cmp * s1 + self._b_cmp * n_costs
        dequant = self._a_dq * s1
        approx = 0.0
        if self.method.approx_per_iter:
            stair = int((self._stair_cumsum(ctx0 + (k - 1))
                         - self._stair_cumsum(ctx0 - 1)).sum())
            approx = self._a_ap * s1 + self._b_ap * n_costs \
                + self._c_ap * stair
        requant = self._requant_s * n_costs
        decode_total = k * self.shared_s + kv_read + compute + requant
        return SpanTotals(k=k, batch=batch,
                          latency_s=decode_total + dequant + approx,
                          decode_s=decode_total, dequant_s=dequant,
                          approx_s=approx, kv_read_s=kv_read)

    def span_cumlat(self, ctx0, k: int) -> np.ndarray:
        """Cumulative span latency after each of ``k`` iterations.

        Element ``i-1`` equals ``span(ctx0, i).latency_s`` — computed
        with the same exact integer context sums and the same
        coefficient/addition order, so the last element is bitwise
        identical to the span total the engine schedules its event at.
        This is what gives the span fast path per-token completion
        times (the TTFT/TBT substrate) without stepping token by token.
        """
        ctx0 = np.ascontiguousarray(ctx0, dtype=np.int64)
        if ctx0.size == 0:
            raise ValueError("span needs at least one request")
        if k < 1:
            raise ValueError(f"span length must be >= 1, got {k}")
        if int(ctx0.min()) < 1:
            raise ValueError("context lengths must be >= 1")
        batch = int(ctx0.size)
        i = np.arange(1, k + 1, dtype=np.int64)
        n_costs = batch * i
        s1 = i * int(ctx0.sum()) + batch * (i * (i - 1) // 2)
        kv_read = self._a_kv * s1
        compute = self._a_cmp * s1 + self._b_cmp * n_costs
        dequant = self._a_dq * s1
        approx = 0.0
        if self.method.approx_per_iter:
            stair = (self._stair_cumsum(ctx0[None, :] + (i[:, None] - 1))
                     - self._stair_cumsum(ctx0 - 1)[None, :]).sum(axis=1)
            approx = self._a_ap * s1 + self._b_ap * n_costs \
                + self._c_ap * stair
        requant = self._requant_s * n_costs
        decode_total = i * self.shared_s + kv_read + compute + requant
        return decode_total + dequant + approx

    def find_boundary(self, ctx0, k: int, elapsed_s: float) -> int:
        """Smallest ``j`` in ``[1, k]`` whose span latency reaches
        ``elapsed_s``.

        Used to truncate an in-flight span when a request joins the
        batch mid-span: the join takes effect at the end of the
        iteration in progress, i.e. at boundary ``j``.  Clamps to ``k``
        when ``elapsed_s`` lands at (or FP-rounds past) the span's end.
        """
        lo, hi = 1, k
        while lo < hi:
            mid = (lo + hi) // 2
            if self.span(ctx0, mid).latency_s >= elapsed_s:
                hi = mid
            else:
                lo = mid + 1
        return lo


def request_decode_costs(
    spec: ModelSpec,
    replica: ReplicaResources,
    method: Method,
    ctx_len: int,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> RequestDecodeCosts:
    """Per-iteration costs of one request with ``ctx_len`` cached tokens.

    Thin wrapper over :class:`BatchCostModel`; construct the model once
    instead when evaluating many contexts.
    """
    return BatchCostModel(spec, replica, method, calib).request_costs(ctx_len)


def iteration_latency(
    spec: ModelSpec,
    replica: ReplicaResources,
    method: Method,
    ctx_lens: list[int],
    calib: Calibration = DEFAULT_CALIBRATION,
) -> IterationTiming:
    """Latency of one continuous-batching iteration over ``ctx_lens``.

    Thin wrapper over :class:`BatchCostModel` (see
    :meth:`BatchCostModel.iteration`).
    """
    return BatchCostModel(spec, replica, method, calib).iteration(ctx_lens)
