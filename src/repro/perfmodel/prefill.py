"""Prefill-stage timing model (compute-bound roofline).

Prefill cost splits into the dense linear layers (projections, MLP,
embeddings — ``2·P·L`` flops at ``linear_mfu`` of FP16 peak) and the
quadratic attention term (``2·L²·H·d·layers`` causal flops at the much
lower ``attention_mfu``).  HACK accelerates only the attention term:
the two matmuls run on INT8 tensor cores (where present) with the
additional fused-quantization gain, derated by the partition-size
efficiency (§6 kernel; Table 8 sensitivity).

Quantized methods additionally pay a one-time KV quantization pass,
modelled as memory traffic over the prefill replica's HBM (the paper
measures it at 1.25–2.91% of JCT).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.parallelism import ReplicaResources
from ..methods.base import FP16_BYTES, Method
from ..model.config import ModelSpec
from .calibration import Calibration, DEFAULT_CALIBRATION

__all__ = ["PrefillBreakdown", "prefill_time", "attention_rate_tflops"]


@dataclass(frozen=True)
class PrefillBreakdown:
    """Seconds spent in each prefill component."""

    linear_s: float
    attention_s: float
    quantize_s: float

    @property
    def compute_s(self) -> float:
        """Prefill compute (what the paper's 'Prefill' bucket reports)."""
        return self.linear_s + self.attention_s

    @property
    def total_s(self) -> float:
        return self.compute_s + self.quantize_s


def attention_rate_tflops(replica: ReplicaResources, method: Method,
                          calib: Calibration) -> float:
    """Effective attention-matmul throughput for ``method`` on ``replica``.

    HACK uses the INT8 path when the GPU has one (everything except
    V100), scaled by the fused-kernel partition efficiency.  The §3
    FP8 simulation halves matmul time.  Everything else runs FP16.
    """
    base = replica.fp16_tflops * calib.attention_mfu
    if method.int8_attention and replica.supports_int8:
        gain = calib.int8_attention_gain * method.int_compute_gain
        eff = calib.partition_efficiency(method.partition_size)
        return base * gain * eff
    if method.int8_attention:
        # V100: no INT8 tensor cores — the quantized matmul runs at the
        # FP16 rate, neither accelerated nor penalized (§7.2: "unable
        # to accelerate prefill computation").
        return base
    if method.fp8_attention_sim:
        return base * calib.fp8_sim_attention_speedup
    return base


def prefill_time(
    spec: ModelSpec,
    replica: ReplicaResources,
    prompt_len: int,
    method: Method,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> PrefillBreakdown:
    """Prefill timing for one request of ``prompt_len`` tokens."""
    if prompt_len < 1:
        raise ValueError(f"prompt_len must be >= 1, got {prompt_len}")

    pp_eff = calib.pp_efficiency if replica.parallelism.pp > 1 else 1.0

    linear_flops = 2.0 * spec.n_params * prompt_len
    linear_rate = replica.fp16_tflops * 1e12 * calib.linear_mfu * pp_eff
    linear_s = linear_flops / linear_rate

    # Causal attention: L²/2 positions, two matmuls, all query heads.
    attn_flops = (
        2.0 * prompt_len ** 2 * spec.n_heads * spec.head_dim * spec.n_layers
    )
    attn_rate = attention_rate_tflops(replica, method, calib) * 1e12 * pp_eff
    attention_s = attn_flops / attn_rate

    quantize_s = 0.0
    if method.quantize_cost:
        kv_fp16_bytes = prompt_len * spec.kv_bytes_per_token(FP16_BYTES)
        traffic = kv_fp16_bytes * calib.quantize_traffic_factor
        quantize_s = traffic / (replica.mem_bw_gbps * 1e9 * calib.stream_bw_eff)

    return PrefillBreakdown(linear_s=linear_s, attention_s=attention_s,
                            quantize_s=quantize_s)
