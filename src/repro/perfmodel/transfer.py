"""KV transfer timing between prefill and decode replicas.

Glue between the :class:`~repro.methods.base.Method` byte accounting
and the :class:`~repro.cluster.network.NetworkModel`: computes the wire
size of a request's KV under a method and the resulting transfer time,
with optional layer-wise pipelining (§2.1) and the CPU-swap detour
(§5.1 step 6).
"""

from __future__ import annotations

from ..cluster.network import NetworkModel
from ..cluster.parallelism import ReplicaResources
from ..methods.base import Method
from ..model.config import ModelSpec
from .calibration import Calibration, DEFAULT_CALIBRATION

__all__ = ["kv_wire_bytes", "transfer_time", "make_network_model",
           "DEFAULT_PIPELINE_STAGES"]

#: Granularity of transfer/compute overlap under layer-wise pipelining.
#: KV is shipped per *pipeline stage*, not per layer — the engine's
#: long-standing convention (``ClusterConfig.pipeline_stages``), which
#: this module previously contradicted by overlapping at ``n_layers``
#: granularity and so under-reported the exposed tail ~10×.
DEFAULT_PIPELINE_STAGES = 8


def make_network_model(calib: Calibration = DEFAULT_CALIBRATION) -> NetworkModel:
    """Network model with the calibration's efficiency and latency."""
    return NetworkModel(efficiency=calib.net_efficiency,
                        latency_s=calib.net_latency_s)


def kv_wire_bytes(spec: ModelSpec, method: Method, prompt_len: int) -> float:
    """Bytes of KV (plus quantization metadata) shipped for one request."""
    if prompt_len < 1:
        raise ValueError(f"prompt_len must be >= 1, got {prompt_len}")
    return prompt_len * spec.kv_bytes_per_token(method.kv_wire_bytes_per_value)


def transfer_time(
    spec: ModelSpec,
    method: Method,
    prompt_len: int,
    prefill_replica: ReplicaResources,
    decode_replica: ReplicaResources,
    calib: Calibration = DEFAULT_CALIBRATION,
    pipelined: bool = False,
    prefill_compute_s: float = 0.0,
    via_cpu: bool = False,
    n_stages: int = DEFAULT_PIPELINE_STAGES,
) -> float:
    """Seconds of *exposed* KV transfer time for one request.

    With ``pipelined=True`` the transfer overlaps the request's own
    prefill compute at ``n_stages`` granularity (the engine's
    per-pipeline-stage shipping, not per layer); ``via_cpu`` models the
    swap path (which also makes pipelining infeasible, §2.1 case ii).
    """
    net = make_network_model(calib)
    nbytes = kv_wire_bytes(spec, method, prompt_len)
    sender = prefill_replica.network_gbps
    receiver = decode_replica.network_gbps
    if via_cpu:
        return net.transfer_time(nbytes, sender, receiver, via_cpu=True).seconds
    if pipelined:
        return net.pipelined_exposed_time(nbytes, sender, receiver,
                                          compute_s=prefill_compute_s,
                                          n_stages=n_stages)
    return net.transfer_time(nbytes, sender, receiver).seconds
