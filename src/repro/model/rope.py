"""Rotary position embeddings (RoPE), as used by every registry model.

RoPE rotates consecutive channel pairs of Q and K by a position- and
frequency-dependent angle; relative positions then appear as phase
differences in the Q·K dot products.  The implementation operates on
``(seq_len, head_dim)`` matrices for one head.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rope_angles", "apply_rope"]


def rope_angles(positions: np.ndarray, head_dim: int,
                base: float = 10000.0) -> tuple[np.ndarray, np.ndarray]:
    """cos/sin tables of shape ``(len(positions), head_dim // 2)``."""
    if head_dim % 2:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    positions = np.asarray(positions, dtype=np.float64)
    inv_freq = base ** (-np.arange(0, head_dim, 2) / head_dim)
    angles = positions[:, None] * inv_freq[None, :]
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, positions: np.ndarray,
               base: float = 10000.0) -> np.ndarray:
    """Rotate channel pairs of ``x`` (``(seq_len, head_dim)``) by position.

    Pairs are (0,1), (2,3), …, the interleaved convention; each pair is
    rotated by ``position * base**(-2i/d)`` radians.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (seq_len, head_dim), got shape {x.shape}")
    cos, sin = rope_angles(positions, x.shape[1], base)
    even = x[:, 0::2]
    odd = x[:, 1::2]
    out = np.empty_like(x)
    out[:, 0::2] = even * cos - odd * sin
    out[:, 1::2] = even * sin + odd * cos
    return out
