"""Model substrate: architecture registry and a runnable numpy transformer."""

from .config import MODEL_LETTERS, MODELS, ModelSpec, get_model, tiny_spec
from .rope import apply_rope, rope_angles
from .transformer import (
    FULL_BACKENDS,
    Transformer,
    TransformerWeights,
    rms_norm,
    silu,
)

__all__ = [
    "ModelSpec",
    "MODELS",
    "MODEL_LETTERS",
    "get_model",
    "tiny_spec",
    "apply_rope",
    "rope_angles",
    "Transformer",
    "TransformerWeights",
    "FULL_BACKENDS",
    "rms_norm",
    "silu",
]
