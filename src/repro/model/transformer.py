"""A runnable decoder-only transformer in numpy.

This is the model substrate for the accuracy experiments: a Llama-style
architecture (RMSNorm → GQA attention with RoPE → SwiGLU MLP, tied
embeddings) small enough to run on CPU, with *pluggable attention*:

* full-sequence backends (prefill path): exact, HACK, dequantize-based,
  and the flash variants — chosen with the ``backend`` argument;
* decode-path caches (one per layer per KV head): any object exposing
  ``append / append_bulk / attention`` — the three cache families of
  :mod:`repro.core.kv_cache` plus the compressor-seeded cache of
  :mod:`repro.quant.roundtrip_cache`.

Weights are random but fixed by seed; the accuracy harness compares
*generation agreement* between the exact backend and each quantized
backend on the same weights, which isolates exactly the quantization
error the paper's Table 6 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.attention import (
    HackConfig,
    attention_dequantize,
    attention_hack,
    attention_reference,
)
from ..core.flash import flash_attention, flash_attention_hack
from .config import ModelSpec
from .rope import apply_rope

__all__ = ["Transformer", "TransformerWeights", "FULL_BACKENDS", "rms_norm",
           "silu"]

FULL_BACKENDS = ("reference", "hack", "dequant", "flash", "flash-hack")

_EPS = 1e-6


def rms_norm(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Root-mean-square layer norm: ``x / rms(x) * weight``."""
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + _EPS)
    return x / rms * weight


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


@dataclass
class _LayerWeights:
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray
    norm_attn: np.ndarray
    norm_mlp: np.ndarray


class TransformerWeights:
    """Seeded random weights for a :class:`ModelSpec` architecture."""

    def __init__(self, spec: ModelSpec, seed: int = 0) -> None:
        self.spec = spec
        rng = np.random.default_rng(seed)
        h = spec.hidden_size
        q_dim = spec.n_heads * spec.head_dim
        kv_dim = spec.n_kv_heads * spec.head_dim

        def init(rows, cols):
            return rng.normal(scale=1.0 / np.sqrt(rows), size=(rows, cols))

        self.embedding = rng.normal(scale=1.0, size=(spec.vocab_size, h))
        self.layers = [
            _LayerWeights(
                wq=init(h, q_dim),
                wk=init(h, kv_dim),
                wv=init(h, kv_dim),
                wo=init(q_dim, h),
                w_gate=init(h, spec.intermediate_size),
                w_up=init(h, spec.intermediate_size),
                w_down=init(spec.intermediate_size, h),
                norm_attn=np.ones(h),
                norm_mlp=np.ones(h),
            )
            for _ in range(spec.n_layers)
        ]
        self.final_norm = np.ones(h)


class _DecodeState:
    """Per-layer KV caches plus the running position counter."""

    def __init__(self, caches: list[list], position: int) -> None:
        self.caches = caches  # [layer][kv_head] -> cache object
        self.position = position


class Transformer:
    """Runnable numpy transformer with pluggable quantized attention.

    Parameters
    ----------
    spec:
        Architecture (use :func:`repro.model.config.tiny_spec` for CPU
        scale).
    backend:
        Full-sequence attention backend for the prefill path, one of
        :data:`FULL_BACKENDS`.
    hack_config:
        Quantization settings for the ``hack`` / ``dequant`` /
        ``flash-hack`` backends.
    seed / quant_seed:
        Weight seed and stochastic-rounding seed.
    """

    def __init__(
        self,
        spec: ModelSpec,
        backend: str = "reference",
        hack_config: HackConfig | None = None,
        seed: int = 0,
        quant_seed: int = 0,
        weights: TransformerWeights | None = None,
    ) -> None:
        if backend not in FULL_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {FULL_BACKENDS}"
            )
        self.spec = spec
        self.backend = backend
        self.hack_config = hack_config or HackConfig(
            partition_size=min(64, spec.head_dim)
        )
        self.weights = weights if weights is not None else TransformerWeights(
            spec, seed
        )
        self._rng = np.random.default_rng(quant_seed)

    # -- full-sequence forward (prefill path) -------------------------------

    def forward_full(self, tokens: Sequence[int]) -> np.ndarray:
        """Logits for every position of ``tokens`` — ``(L, vocab)``."""
        hidden, _ = self._run_layers(tokens, collect_kv=False)
        return self._logits(hidden)

    def kv_planes(self, tokens: Sequence[int]) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-layer post-RoPE (K, V) planes, each ``(L, n_kv·head_dim)``.

        These are exactly the tensors the prefill instance would ship to
        the decode instance; the compressor experiments operate on them.
        """
        _, planes = self._run_layers(tokens, collect_kv=True)
        return [(k, v) for k, v, _ in planes]

    def qkv_planes(
        self, tokens: Sequence[int]
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-layer post-RoPE (Q, K, V) planes.

        Q has shape ``(L, n_heads·head_dim)``; K and V have shape
        ``(L, n_kv_heads·head_dim)``.  The accuracy harness replays
        attention over these with each quantization method.
        """
        _, planes = self._run_layers(tokens, collect_kv=True)
        return [(q, k, v) for k, v, q in planes]

    # -- generation (decode path) -------------------------------------------

    def generate(
        self,
        prompt: Sequence[int],
        max_new_tokens: int,
        cache_factory: Callable[[], object] | None = None,
    ) -> list[int]:
        """Greedy generation: prefill ``prompt``, then decode step-by-step.

        ``cache_factory`` builds one KV cache per (layer, kv-head); it
        defaults to exact FP16 caches.  The prefill K/V planes are
        appended in bulk (mirroring the prefill→decode handoff), after
        which every new token flows through the cache's quantized
        ``append`` and ``attention`` paths.
        """
        if not len(prompt):
            raise ValueError("prompt must contain at least one token")
        if cache_factory is None:
            from ..core.kv_cache import Fp16KVCache

            cache_factory = lambda: Fp16KVCache(self.spec.head_dim)  # noqa: E731

        hidden, planes = self._run_layers(prompt, collect_kv=True)
        logits = self._logits(hidden[-1:])
        next_token = int(np.argmax(logits[-1]))

        caches = []
        d = self.spec.head_dim
        for layer_planes in planes:
            k_plane, v_plane, _ = layer_planes
            layer_caches = []
            for h in range(self.spec.n_kv_heads):
                cache = cache_factory()
                layer_caches.append(cache)
                cache.append_bulk(
                    k_plane[:, h * d:(h + 1) * d], v_plane[:, h * d:(h + 1) * d]
                )
            caches.append(layer_caches)
        state = _DecodeState(caches, position=len(prompt))

        out = [next_token]
        for _ in range(max_new_tokens - 1):
            next_token = self._decode_step(next_token, state)
            out.append(next_token)
        return out

    # -- internals -----------------------------------------------------------

    def _run_layers(self, tokens, collect_kv):
        spec = self.spec
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.size == 0:
            raise ValueError("tokens must be a non-empty 1-D sequence")
        if tokens.min() < 0 or tokens.max() >= spec.vocab_size:
            raise ValueError("token id out of vocabulary range")
        positions = np.arange(tokens.size)
        x = self.weights.embedding[tokens]
        planes = []
        for layer in self.weights.layers:
            normed = rms_norm(x, layer.norm_attn)
            attn_out, kv = self._attention_full(normed, layer, positions,
                                                collect_kv)
            if collect_kv:
                planes.append(kv)
            x = x + attn_out
            normed = rms_norm(x, layer.norm_mlp)
            x = x + self._mlp(normed, layer)
        return x, planes

    def _attention_full(self, x, layer, positions, collect_kv):
        spec = self.spec
        d = spec.head_dim
        group = spec.n_heads // spec.n_kv_heads
        q = x @ layer.wq
        k = x @ layer.wk
        v = x @ layer.wv

        k_rot = np.empty_like(k)
        q_rot = np.empty_like(q) if collect_kv else None
        outputs = np.empty((x.shape[0], spec.n_heads * d))
        for h_kv in range(spec.n_kv_heads):
            k_h = apply_rope(k[:, h_kv * d:(h_kv + 1) * d], positions)
            k_rot[:, h_kv * d:(h_kv + 1) * d] = k_h
            v_h = v[:, h_kv * d:(h_kv + 1) * d]
            for g in range(group):
                h_q = h_kv * group + g
                q_h = apply_rope(q[:, h_q * d:(h_q + 1) * d], positions)
                if q_rot is not None:
                    q_rot[:, h_q * d:(h_q + 1) * d] = q_h
                outputs[:, h_q * d:(h_q + 1) * d] = self._attend(q_h, k_h, v_h)
        kv = (k_rot, v, q_rot) if collect_kv else None
        return outputs @ layer.wo, kv

    def _attend(self, q_h, k_h, v_h):
        if self.backend == "reference":
            return attention_reference(q_h, k_h, v_h, causal=True)
        if self.backend == "hack":
            return attention_hack(q_h, k_h, v_h, self.hack_config,
                                  rng=self._rng, causal=True)
        if self.backend == "dequant":
            return attention_dequantize(q_h, k_h, v_h, self.hack_config,
                                        rng=self._rng, causal=True)
        if self.backend == "flash":
            return flash_attention(q_h, k_h, v_h, causal=True)
        return flash_attention_hack(q_h, k_h, v_h, self.hack_config,
                                    rng=self._rng, causal=True)

    def _decode_step(self, token: int, state: _DecodeState) -> int:
        spec = self.spec
        d = spec.head_dim
        group = spec.n_heads // spec.n_kv_heads
        position = np.array([state.position])
        x = self.weights.embedding[np.array([token])]
        for layer, layer_caches in zip(self.weights.layers, state.caches):
            normed = rms_norm(x, layer.norm_attn)
            q = normed @ layer.wq
            k = normed @ layer.wk
            v = normed @ layer.wv
            outputs = np.empty((1, spec.n_heads * d))
            for h_kv in range(spec.n_kv_heads):
                cache = layer_caches[h_kv]
                k_h = apply_rope(k[:, h_kv * d:(h_kv + 1) * d], position)
                cache.append(k_h[0], v[0, h_kv * d:(h_kv + 1) * d])
                for g in range(group):
                    h_q = h_kv * group + g
                    q_h = apply_rope(q[:, h_q * d:(h_q + 1) * d], position)
                    outputs[0, h_q * d:(h_q + 1) * d] = cache.attention(q_h[0])
            x = x + outputs @ layer.wo
            normed = rms_norm(x, layer.norm_mlp)
            x = x + self._mlp(normed, layer)
        logits = self._logits(x)
        state.position += 1
        return int(np.argmax(logits[-1]))

    def _mlp(self, x, layer):
        return (silu(x @ layer.w_gate) * (x @ layer.w_up)) @ layer.w_down

    def _logits(self, hidden):
        normed = rms_norm(hidden, self.weights.final_norm)
        return normed @ self.weights.embedding.T
