"""Model architecture registry (paper Table 3 models).

The paper evaluates five open models, abbreviated M, P, Y, L, F:
Mistral-v0.3 7B, Phi-3 14B, Yi 34B, Llama-3.1 70B and Falcon 180B.
The performance model only needs their architecture-derived quantities
— parameter bytes, KV bytes per token, flops per token — so the
registry records the published architecture hyper-parameters and
derives the rest.

A small synthetic spec factory (:func:`tiny_spec`) supports the
runnable numpy transformer used by the accuracy harness.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelSpec", "MODELS", "MODEL_LETTERS", "get_model", "tiny_spec"]

_FP16_BYTES = 2


@dataclass(frozen=True)
class ModelSpec:
    """Decoder-only transformer architecture description.

    ``n_params`` is the published parameter count (authoritative);
    :meth:`estimated_params` recomputes it from the architecture as a
    consistency check (they agree within ~10% for every registry entry).
    """

    name: str
    letter: str
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    intermediate_size: int
    vocab_size: int
    max_context: int
    n_params: int
    #: SwiGLU-style gated MLP (3 matrices) vs plain GELU MLP (2 matrices,
    #: e.g. Falcon).
    gated_mlp: bool = True

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads:
            raise ValueError(
                f"{self.name}: n_heads ({self.n_heads}) must be divisible "
                f"by n_kv_heads ({self.n_kv_heads})"
            )

    # -- derived sizes -------------------------------------------------------

    def kv_bytes_per_token(self, bytes_per_value: float = _FP16_BYTES) -> float:
        """Bytes of K+V cache one token adds across all layers."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * bytes_per_value

    def param_bytes(self, bytes_per_value: float = _FP16_BYTES) -> float:
        """Total parameter storage."""
        return self.n_params * bytes_per_value

    def estimated_params(self) -> int:
        """Parameter count from the architecture (consistency check)."""
        h = self.hidden_size
        attn = h * (self.n_heads * self.head_dim) + 2 * h * (
            self.n_kv_heads * self.head_dim
        ) + (self.n_heads * self.head_dim) * h
        mlp_matrices = 3 if self.gated_mlp else 2
        mlp = mlp_matrices * h * self.intermediate_size
        per_layer = attn + mlp + 2 * h  # + two norm vectors
        embed = self.vocab_size * h
        return self.n_layers * per_layer + 2 * embed

    def flops_per_token(self, context_len: int = 0) -> float:
        """Forward flops for one token: ~2·params plus attention O(L)."""
        attn_flops = 4 * self.n_layers * self.n_heads * self.head_dim * context_len
        return 2.0 * self.n_params + attn_flops

    def prefill_flops(self, prompt_len: int) -> float:
        """Forward flops for a full prompt (quadratic attention term)."""
        linear = 2.0 * self.n_params * prompt_len
        attn = 2.0 * self.n_layers * self.n_heads * self.head_dim * prompt_len ** 2
        return linear + attn


def _spec(**kwargs) -> ModelSpec:
    return ModelSpec(**kwargs)


#: The paper's five models with published architecture parameters.
MODELS: dict[str, ModelSpec] = {
    "mistral-7b": _spec(
        name="mistral-7b", letter="M", n_layers=32, hidden_size=4096,
        n_heads=32, n_kv_heads=8, head_dim=128, intermediate_size=14336,
        vocab_size=32768, max_context=32768, n_params=7_250_000_000,
    ),
    "phi-3-14b": _spec(
        name="phi-3-14b", letter="P", n_layers=40, hidden_size=5120,
        n_heads=40, n_kv_heads=10, head_dim=128, intermediate_size=17920,
        vocab_size=32064, max_context=131072, n_params=14_000_000_000,
    ),
    "yi-34b": _spec(
        name="yi-34b", letter="Y", n_layers=60, hidden_size=7168,
        n_heads=56, n_kv_heads=8, head_dim=128, intermediate_size=20480,
        vocab_size=64000, max_context=200000, n_params=34_400_000_000,
    ),
    "llama-3.1-70b": _spec(
        name="llama-3.1-70b", letter="L", n_layers=80, hidden_size=8192,
        n_heads=64, n_kv_heads=8, head_dim=128, intermediate_size=28672,
        vocab_size=128256, max_context=131072, n_params=70_600_000_000,
    ),
    "falcon-180b": _spec(
        name="falcon-180b", letter="F", n_layers=80, hidden_size=14848,
        n_heads=232, n_kv_heads=8, head_dim=64, intermediate_size=59392,
        vocab_size=65024, max_context=2048, n_params=180_000_000_000,
        gated_mlp=False,
    ),
}

#: Letter → spec, as the paper's figures label models M/P/Y/L/F.
MODEL_LETTERS: dict[str, ModelSpec] = {m.letter: m for m in MODELS.values()}


def get_model(name_or_letter: str) -> ModelSpec:
    """Look up a model by registry name ("llama-3.1-70b") or letter ("L")."""
    if name_or_letter in MODELS:
        return MODELS[name_or_letter]
    if name_or_letter in MODEL_LETTERS:
        return MODEL_LETTERS[name_or_letter]
    raise KeyError(
        f"unknown model {name_or_letter!r}; choose from "
        f"{sorted(MODELS)} or letters {sorted(MODEL_LETTERS)}"
    )


def tiny_spec(
    n_layers: int = 2,
    hidden_size: int = 64,
    n_heads: int = 4,
    n_kv_heads: int = 2,
    head_dim: int = 16,
    intermediate_size: int = 128,
    vocab_size: int = 256,
    max_context: int = 2048,
) -> ModelSpec:
    """A small spec for the runnable numpy transformer (tests/accuracy)."""
    spec = ModelSpec(
        name=f"tiny-{n_layers}l-{hidden_size}h", letter="T",
        n_layers=n_layers, hidden_size=hidden_size, n_heads=n_heads,
        n_kv_heads=n_kv_heads, head_dim=head_dim,
        intermediate_size=intermediate_size, vocab_size=vocab_size,
        max_context=max_context, n_params=0,
    )
    # Fill in the derived parameter count for the synthetic spec.
    object.__setattr__(spec, "n_params", spec.estimated_params())
    return spec
