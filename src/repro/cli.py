"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro.cli list
    python -m repro.cli fig9 [--scale 0.5]
    python -m repro.cli all --scale 0.25
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import (
    fig1_motivation,
    fig2_4_quant_overhead,
    fig9_12_jct,
    fig13_ablation,
    fig14_scalability,
    sec3_fp_formats,
    table5_memory,
    table6_accuracy,
    table8_sensitivity,
)

__all__ = ["main", "EXPERIMENTS"]

#: name → (description, runner taking scale and returning a renderable).
EXPERIMENTS = {
    "fig1": ("motivation: baseline bottleneck ratios",
             lambda s: fig1_motivation.run(scale=s)),
    "fig2-4": ("CacheGen/KVQuant overhead ratios",
               lambda s: fig2_4_quant_overhead.run(scale=s)),
    "sec3": ("FP4/6/8 low-precision study",
             lambda s: sec3_fp_formats.run(scale=s)),
    "fig9": ("average JCT by dataset (+ fig10 decomposition)",
             lambda s: fig9_12_jct.run_fig9_fig10(scale=s)),
    "fig11": ("average JCT by model",
              lambda s: fig9_12_jct.run_fig11(scale=s)),
    "fig12": ("average JCT by prefill instance",
              lambda s: fig9_12_jct.run_fig12(scale=s)),
    "table5": ("peak decode memory usage (+ §7.4 overheads)",
               lambda s: table5_memory.run(scale=s)),
    "table6": ("accuracy across methods/models/datasets",
               lambda s: table6_accuracy.run()),
    "fig13": ("SE/RQE ablation JCT",
              lambda s: fig13_ablation.run_fig13(scale=s)),
    "table7": ("HACK/RQE accuracy drop",
               lambda s: fig13_ablation.run_table7()),
    "table8": ("partition-size sensitivity",
               lambda s: table8_sensitivity.run(scale=s)),
    "fig14": ("scalability vs prefill:decode ratio",
              lambda s: fig14_scalability.run(scale=s)),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hack-repro",
        description="Reproduce the HACK paper's tables and figures.",
    )
    parser.add_argument("experiment",
                        choices=[*EXPERIMENTS, "all", "list"],
                        help="artifact to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="trace-size multiplier (smaller = faster)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"== {name}: {description} ==")
        start = time.time()
        result = runner(args.scale)
        print(result.render())
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
