"""Command-line entry point: run scenarios, sweeps and paper artifacts.

Subcommands::

    python -m repro.cli run --model L --dataset cocktail \
        --methods baseline,hack --json --out out/
    python -m repro.cli run fig9 --scale 0.5       # legacy artifact names
    python -m repro.cli fig9 --scale 0.5           # …also as top-level alias
    python -m repro.cli sweep --axis dataset=imdb,cocktail \
        --axis prefill_gpu=A10G,V100 --workers 4 --out out/
    python -m repro.cli run --methods baseline,hack?pi=128,bits=4
    python -m repro.cli sweep --methods hack \
        --axis method.partition_size=32,64,128,256 --out out/
    python -m repro.cli compare out-serial/ out-parallel/
    python -m repro.cli export out/some-artifact.json --format md
    python -m repro.cli list
    python -m repro.cli lint --json

``run``/``sweep`` build declarative :class:`repro.api.Scenario` /
:class:`repro.api.Sweep` objects and execute them on a
:class:`repro.api.Runner` (``--workers N`` fans out over processes);
``--json``/``--out`` emit schema-versioned
:class:`repro.api.RunArtifact` JSON that ``compare`` and ``export``
consume.  The historical figure/table names (``fig9``, ``table5``, …)
remain available as aliases of ``run`` on the predefined experiment
grids and render exactly the same tables as before.
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from .perfmodel.calibration import Calibration

from .analysis.tables import Table, format_value
from .api import Runner, RunArtifact, Scenario, Sweep, compare_artifacts
from .experiments import (
    fig1_motivation,
    fig2_4_quant_overhead,
    fig9_12_jct,
    fig13_ablation,
    fig14_scalability,
    faults as faults_experiment,
    kvstore as kvstore_experiment,
    scale as scale_experiment,
    scheduling,
    sec3_fp_formats,
    slo_goodput,
    table5_memory,
    table6_accuracy,
    table8_sensitivity,
)
from .kvstore.selection import selection_policies, split_selection_list
from .lint.cli import add_lint_arguments, run_from_args as \
    run_lint_from_args
from .kvstore.spec import eviction_policies, kvstore_families, \
    split_kvstore_list
from .methods import METHODS, method_families, split_method_list
from .model.config import MODEL_LETTERS as MODEL_REGISTRY
from .sim.elastic import admission_policies, autoscaler_policies, \
    split_admission_list, split_autoscaler_list
from .sim.faults import fault_families, split_faults_list
from .sim.recovery import recovery_policies, split_recovery_list
from .sim.scheduling import dispatch_policies, placement_policies, \
    split_scheduler_list
from .workload.arrivals import arrival_processes, split_arrival_list
from .workload.datasets import DATASETS as DATASET_REGISTRY

__all__ = ["main", "EXPERIMENTS", "build_parser"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One predefined paper artifact runnable via ``run <name>``."""

    description: str
    #: ``(scale, runner) -> renderable``; ``scale`` ignored when
    #: ``supports_scale`` is false.
    build: callable
    #: Simulation-backed artifacts scale their trace; accuracy-harness
    #: artifacts (table6/table7) have no trace and reject ``--scale``.
    supports_scale: bool = True


#: name → predefined experiment (the paper's tables and figures).
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig1": ExperimentSpec(
        "motivation: baseline bottleneck ratios",
        lambda s, r: fig1_motivation.run(scale=s, runner=r)),
    "fig2-4": ExperimentSpec(
        "CacheGen/KVQuant overhead ratios",
        lambda s, r: fig2_4_quant_overhead.run(scale=s, runner=r)),
    "sec3": ExperimentSpec(
        "FP4/6/8 low-precision study",
        lambda s, r: sec3_fp_formats.run(scale=s, runner=r)),
    "fig9": ExperimentSpec(
        "average JCT by dataset (+ fig10 decomposition)",
        lambda s, r: fig9_12_jct.run_fig9_fig10(scale=s, runner=r)),
    "fig11": ExperimentSpec(
        "average JCT by model",
        lambda s, r: fig9_12_jct.run_fig11(scale=s, runner=r)),
    "fig12": ExperimentSpec(
        "average JCT by prefill instance",
        lambda s, r: fig9_12_jct.run_fig12(scale=s, runner=r)),
    "table5": ExperimentSpec(
        "peak decode memory usage (+ §7.4 overheads)",
        lambda s, r: table5_memory.run(scale=s, runner=r)),
    "table6": ExperimentSpec(
        "accuracy across methods/models/datasets",
        lambda s, r: table6_accuracy.run(), supports_scale=False),
    "fig13": ExperimentSpec(
        "SE/RQE ablation JCT",
        lambda s, r: fig13_ablation.run_fig13(scale=s, runner=r)),
    "table7": ExperimentSpec(
        "HACK/RQE accuracy drop",
        lambda s, r: fig13_ablation.run_table7(), supports_scale=False),
    "table8": ExperimentSpec(
        "partition-size sensitivity",
        lambda s, r: table8_sensitivity.run(scale=s, runner=r)),
    "fig14": ExperimentSpec(
        "scalability vs prefill:decode ratio",
        lambda s, r: fig14_scalability.run(scale=s, runner=r)),
    "slo": ExperimentSpec(
        "SLO goodput under bursty/diurnal arrival processes",
        lambda s, r: slo_goodput.run(scale=s, runner=r)),
    "sched": ExperimentSpec(
        "scheduling policies × arrivals on a mixed A10G+T4 fleet",
        lambda s, r: scheduling.run(scale=s, runner=r)),
    "kvstore": ExperimentSpec(
        "tiered KV store × compression selection on session workloads",
        lambda s, r: kvstore_experiment.run(scale=s, runner=r)),
    "faults": ExperimentSpec(
        "fault injection × recovery policies under bursty traffic",
        lambda s, r: faults_experiment.run(scale=s, runner=r)),
    "scale": ExperimentSpec(
        "autoscaler × admission over a diurnal day "
        "(goodput per GPU-hour)",
        lambda s, r: scale_experiment.run(scale=s, runner=r)),
}

#: Dataset axis used by the default ``sweep`` grid (Fig. 9 style).
_ALL_DATASETS = ("imdb", "arxiv", "cocktail", "humaneval")


def _default_sweep_axes(base: Scenario) -> tuple:
    """Default grid when no ``--axis`` is given: the base scenario's
    methods as a single-method axis, crossed with all datasets — unless
    the user pinned --dataset, which then stays fixed.  Base-scenario
    flags are never silently overridden by a defaulted axis."""
    axes = []
    if base.dataset == _SCENARIO_FLAG_DEFAULTS["dataset"]:
        axes.append(("dataset", _ALL_DATASETS))
    axes.append(("methods", tuple((m,) for m in base.methods)))
    return tuple(axes)


# -- scenario construction from flags ----------------------------------------

def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("scenario fields")
    group.add_argument("--model", default="L",
                       help="model letter or registry name (default L)")
    group.add_argument("--methods", default="baseline,hack",
                       help="comma-separated methods: registry names "
                            "and/or specs like hack?pi=128,bits=4 "
                            "(see `list` for families and parameters)")
    group.add_argument("--dataset", default="cocktail")
    group.add_argument("--prefill-gpu", default="A10G",
                       help="prefill GPU, or a heterogeneous fleet like "
                            "A10G+T4 or A10G:2+T4:4 (per-fleet replica "
                            "counts)")
    group.add_argument("--decode-gpu", default="A100")
    group.add_argument("--rps", type=float, default=None,
                       help="arrival rate; default derives from baseline "
                            "capacity at --load-factor")
    group.add_argument("--load-factor", type=float, default=None)
    group.add_argument("--n-requests", type=int, default=None)
    group.add_argument("--seed", type=int, default=None)
    group.add_argument("--pipelining", action="store_true")
    group.add_argument("--n-prefill-replicas", type=int, default=None)
    group.add_argument("--n-decode-replicas", type=int, default=None)
    group.add_argument("--activation-overhead", type=float, default=None)
    group.add_argument("--step-mode", choices=("span", "token"),
                       default=None,
                       help="decode stepping: span (fast-forward, "
                            "default) or token (legacy differential "
                            "path)")
    group.add_argument("--arrival", default=None,
                       metavar="PROCESS",
                       help="arrival process: poisson (default), "
                            "constant, or a spec like "
                            "mmpp?burst=4,duty=0.1,dwell=20 "
                            "(see `list` for families and parameters)")
    group.add_argument("--scheduler", default=None,
                       metavar="POLICIES",
                       help="dispatch/placement policy pair: a policy "
                            "name (round_robin, best_fit, …), a pair "
                            "like nic_aware+no_swap, or with parameters "
                            "random?seed=7 (see `list`; default is the "
                            "paper's splitwise+shortest_queue)")
    group.add_argument("--kvstore", default=None,
                       metavar="STORE",
                       help="tiered KV store for prefix caching: a spec "
                            "like tiered?dram_gb=8.0+lfu or a bare "
                            "eviction name (lru, lfu, ttl?seconds=120) "
                            "(see `list`; default is no store)")
    group.add_argument("--selection", default=None,
                       metavar="POLICY",
                       help="per-request compression-selection policy: "
                            "static, slo_tier?tier2=hack_int4, or "
                            "congestion?hi=0.75,lo=0.5 (see `list`; "
                            "default keeps one method per cluster)")
    group.add_argument("--faults", default=None,
                       metavar="PLAN",
                       help="fault-injection plan: a family spec like "
                            "replica_crash?mttf=600,mttr=30 or a '+'-"
                            "joined composition replica_crash+"
                            "nic_degrade?factor=0.5 (see `list`; default "
                            "is no faults)")
    group.add_argument("--recovery", default=None,
                       metavar="POLICY",
                       help="recovery policy for faulted requests: "
                            "retry?max=3,base_s=1.0, migrate, or none "
                            "(see `list`; default retry — only active "
                            "when --faults is set)")
    group.add_argument("--autoscaler", default=None,
                       metavar="POLICY",
                       help="autoscaler policy: static, "
                            "reactive?queue_hi=8,queue_lo=1, "
                            "slo?target=0.9, or "
                            "schedule?plan=0:1.0|450:0.5 (see `list`; "
                            "default keeps the fixed fleet)")
    group.add_argument("--admission", default=None,
                       metavar="POLICY",
                       help="admission policy: accept_all, "
                            "shed?queue_max=64, or "
                            "degrade?tier=1,method=hack_int4 (see "
                            "`list`; default accepts every arrival)")
    group.add_argument("--calib", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="calibration override (repeatable)")


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit the artifact JSON instead of tables")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="save schema-versioned artifact JSON here")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel worker processes (default 1)")


def _scenario_from_args(args, scale: float) -> Scenario:
    calibration = None
    if args.calib:
        valid = {f.name for f in dataclasses.fields(Calibration)}
        pairs = []
        for item in args.calib:
            key, sep, value = item.partition("=")
            if not sep:
                raise SystemExit(f"--calib expects KEY=VALUE, got {item!r}")
            if key not in valid:
                raise SystemExit(
                    f"unknown calibration constant {key!r}; choose from "
                    f"{', '.join(sorted(valid))}")
            pairs.append((key, float(value)))
        calibration = tuple(pairs)
    return Scenario(
        model=args.model,
        methods=args.methods,
        dataset=args.dataset,
        prefill_gpu=args.prefill_gpu,
        decode_gpu=args.decode_gpu,
        rps=args.rps,
        load_factor=args.load_factor,
        n_requests=args.n_requests,
        seed=args.seed,
        scale=scale,
        pipelining=args.pipelining,
        n_prefill_replicas=args.n_prefill_replicas,
        n_decode_replicas=args.n_decode_replicas,
        activation_overhead=args.activation_overhead,
        step_mode=args.step_mode,
        arrival=args.arrival,
        scheduler=args.scheduler,
        kvstore=args.kvstore,
        selection=args.selection,
        faults=args.faults,
        recovery=args.recovery,
        autoscaler=args.autoscaler,
        admission=args.admission,
        calibration=calibration,
    )


def _parse_axis(spec: str) -> tuple[str, tuple]:
    """``field=v1,v2`` → (field, values); '+' joins method sets."""
    field, sep, raw = spec.partition("=")
    if not sep or not raw:
        raise SystemExit(f"--axis expects FIELD=V1,V2,…  got {spec!r}")
    if field == "methods":
        # split_method_list keeps spec parameters attached, so a value
        # like "baseline+hack?pi=128,bits=4" stays one method set.
        return field, tuple(tuple(v.split("+"))
                            for v in split_method_list(raw))
    if field == "arrival":
        # likewise for arrival specs: "poisson,mmpp?burst=4,duty=0.1"
        # is two axis values, not three.
        return field, tuple(split_arrival_list(raw))
    if field == "scheduler":
        # and for scheduler pairs: "splitwise,random?seed=3+no_swap"
        # is two axis values.
        return field, tuple(split_scheduler_list(raw))
    if field == "kvstore":
        # and for store specs: "tiered?dram_gb=4.0,hbm_gb=2.0+lfu,lru"
        # is two axis values.
        return field, tuple(split_kvstore_list(raw))
    if field == "selection":
        return field, tuple(split_selection_list(raw))
    if field == "faults":
        # fault plans: "none,replica_crash?mttf=600,mttr=30+nic_degrade"
        # is two axis values ("none" maps to no faults).
        return field, tuple(None if v == "none" else v
                            for v in split_faults_list(raw))
    if field == "recovery":
        return field, tuple(split_recovery_list(raw))
    if field == "autoscaler":
        # autoscaler specs: "static,reactive?queue_hi=6,queue_lo=1" is
        # two axis values ("none" maps to no autoscaler).
        return field, tuple(None if v == "none" else v
                            for v in split_autoscaler_list(raw))
    if field == "admission":
        return field, tuple(None if v == "none" else v
                            for v in split_admission_list(raw))
    return field, tuple(_coerce(token) for token in raw.split(","))


def _coerce(token: str):
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            pass
    if token in ("true", "false"):
        return token == "true"
    return token


# -- output helpers -----------------------------------------------------------

def _emit_artifacts(artifacts: list[RunArtifact], args,
                    as_list: bool = False) -> None:
    """``as_list`` fixes the --json shape per command (sweep always
    emits an array, run always a single object) so consumers never see
    the shape flip with the grid size."""
    if args.out:
        if str(args.out).endswith(".json") and len(artifacts) > 1:
            raise SystemExit(
                f"--out {args.out} is a single file but the run produced "
                f"{len(artifacts)} artifacts; pass a directory instead")
        paths = []
        for artifact in artifacts:
            path = artifact.save(args.out)
            paths.append(str(path))
            print(f"wrote {path}", file=sys.stderr)
        if args.json:
            print(json.dumps(paths, indent=1))
        return
    if args.json:
        payload = [a.to_dict() for a in artifacts]
        print(json.dumps(payload if as_list else payload[0],
                         indent=1, sort_keys=True))
        return
    for artifact in artifacts:
        print(artifact.summary_table().render())
        print()


def _resolve_artifact_paths(paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.glob("*.json"))
            if not found:
                raise SystemExit(f"no .json artifacts under {path}")
            out.extend(found)
        elif path.exists():
            out.append(path)
        else:
            raise SystemExit(f"no such artifact: {path}")
    return out


# -- subcommand implementations ----------------------------------------------

def _cmd_run(args) -> int:
    if args.experiment:
        return _run_predefined(args)
    scale = 1.0 if args.scale is None else args.scale
    scenario = _scenario_from_args(args, scale)
    artifact = Runner(workers=args.workers).run(scenario)
    _emit_artifacts([artifact], args)
    return 0


def _scenario_flag_defaults() -> dict:
    """The scenario-flag defaults, derived from the parser itself so a
    future flag can never be silently ignored by a predefined run."""
    probe = argparse.ArgumentParser()
    _add_scenario_flags(probe)
    return vars(probe.parse_args([]))


#: Used to detect flags that a predefined experiment would otherwise
#: silently ignore (it runs its own fixed grid).
_SCENARIO_FLAG_DEFAULTS = _scenario_flag_defaults()


def _run_predefined(args) -> int:
    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    if args.json or args.out:
        raise SystemExit(
            "--json/--out apply to scenario runs; predefined experiments "
            f"({', '.join(names)}) render tables — use plain "
            "`run <name>` or build the cell as a scenario instead")
    ignored = [flag for flag, default in _SCENARIO_FLAG_DEFAULTS.items()
               if getattr(args, flag) != default]
    if ignored:
        flags = ", ".join("--" + f.replace("_", "-") for f in ignored)
        raise SystemExit(
            f"{flags} do(es) not apply to predefined experiment "
            f"'{args.experiment}' — it runs its own fixed grid; drop the "
            "experiment name to run a custom scenario")
    runner = Runner(workers=args.workers)
    for name in names:
        spec = EXPERIMENTS[name]
        if args.scale is not None and not spec.supports_scale \
                and args.experiment != "all":
            raise SystemExit(
                f"{name} has no simulation trace to scale (it measures "
                "accuracy on the numpy harness); drop --scale")
        scale = 1.0 if args.scale is None else args.scale
        print(f"== {name}: {spec.description} ==")
        start = time.perf_counter()
        result = spec.build(scale, runner)
        print(result.render())
        print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    return 0


def _cmd_sweep(args) -> int:
    scale = 1.0 if args.scale is None else args.scale
    base = _scenario_from_args(args, scale)
    axes = tuple(_parse_axis(spec) for spec in args.axis) \
        or _default_sweep_axes(base)
    sweep = Sweep(base=base, axes=axes)
    print(f"sweep: {len(sweep)} scenarios over axes "
          f"{', '.join(sweep.axis_names())} "
          f"({args.workers} worker{'s' if args.workers != 1 else ''})",
          file=sys.stderr)
    artifacts = Runner(workers=args.workers).run_sweep(sweep)
    if args.out or args.json:
        _emit_artifacts(artifacts, args, as_list=True)
        return 0
    table = Table("Sweep results",
                  [*sweep.axis_names(), "method", "avg_jct_s", "p50_jct_s",
                   "p99_jct_s", "peak_mem", "swaps"])
    # Artifacts come back in expansion order (row-major over the axes),
    # so the swept values — including method.<param> axes, which are
    # not Scenario fields — pair up structurally with the grid.
    combos = itertools.product(*(values for _, values in sweep.axes)) \
        if sweep.axes else iter([()])
    for artifact, combo in zip(artifacts, combos):
        axis_cells = [_axis_cell(value) for value in combo]
        for method, run in artifact.methods.items():
            s = run.summary
            table.add_row(*axis_cells, method, s["avg_jct_s"],
                          s["p50_jct_s"], s["p99_jct_s"],
                          s["peak_memory_fraction"], s["n_swapped"])
    print(table.render())
    return 0


def _axis_cell(value) -> str:
    if isinstance(value, tuple):
        return "+".join(str(v) for v in value)
    return str(value)


def _cmd_compare(args) -> int:
    paths_a = _resolve_artifact_paths([args.a])
    paths_b = _resolve_artifact_paths([args.b])
    if len(paths_a) != len(paths_b):
        print(f"artifact count differs: {len(paths_a)} vs {len(paths_b)}")
        return 1
    all_equal = True
    for path_a, path_b in zip(paths_a, paths_b):
        diff = compare_artifacts(RunArtifact.load(path_a),
                                 RunArtifact.load(path_b), rtol=args.rtol)
        label = f"{path_a.name} vs {path_b.name}"
        if diff["equal"]:
            print(f"{label}: identical (rtol={args.rtol})")
            continue
        all_equal = False
        print(f"{label}: DIFFERS")
        if not diff["scenario_equal"]:
            print("  scenarios differ")
        for method, metrics in diff["methods"].items():
            for metric, delta in metrics.items():
                if metric == "missing_from":
                    print(f"  {method}: missing from side {delta}")
                else:
                    print(f"  {method}.{metric}: "
                          f"{format_value(delta['a'])} vs "
                          f"{format_value(delta['b'])} "
                          f"(rel {delta['rel_diff']:.2e})")
    return 0 if all_equal else 1


def _cmd_export(args) -> int:
    for path in _resolve_artifact_paths(args.artifacts):
        artifact = RunArtifact.load(path)
        table = artifact.summary_table(title=f"{path.name}: "
                                       f"{artifact.scenario.describe()}")
        if args.format == "md":
            print(table.to_markdown())
        elif args.format == "csv":
            print(",".join(table.headers))
            for row in table.rows:
                print(",".join(format_value(c) for c in row))
        else:
            print(table.render())
        print()
    return 0


def _cmd_list(args) -> int:
    catalog = {
        "experiments": {n: s.description for n, s in EXPERIMENTS.items()},
        "models": sorted(MODEL_REGISTRY),
        "datasets": sorted(DATASET_REGISTRY),
        "methods": sorted(METHODS),
        "method_families": {
            name: {"description": fam.description,
                   "signature": fam.signature(),
                   "params": {p: pd.default
                              for p, pd in fam.params.items()}}
            for name, fam in method_families().items()
        },
        "arrival_processes": {
            name: {"description": fam.description,
                   "signature": fam.signature(),
                   "params": {p: pd.default
                              for p, pd in fam.params.items()}}
            for name, fam in arrival_processes().items()
        },
        "dispatch_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in dispatch_policies().items()
        },
        "placement_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in placement_policies().items()
        },
        "kvstore_families": {
            name: {"description": fam.description,
                   "signature": fam.signature(),
                   "params": {p: pd.default
                              for p, pd in fam.params.items()}}
            for name, fam in kvstore_families().items()
        },
        "eviction_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in eviction_policies().items()
        },
        "selection_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in selection_policies().items()
        },
        "fault_families": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in fault_families().items()
        },
        "recovery_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in recovery_policies().items()
        },
        "autoscaler_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in autoscaler_policies().items()
        },
        "admission_policies": {
            name: {"description": cls.description,
                   "signature": cls.signature(),
                   "params": {p: pd.default
                              for p, pd in cls.params.items()}}
            for name, cls in admission_policies().items()
        },
        "prefill_gpus": list(fig1_motivation.GPUS),
    }
    if args.json:
        print(json.dumps(catalog, indent=1))
        return 0
    print("predefined experiments (run <name>):")
    for name, spec in EXPERIMENTS.items():
        suffix = "" if spec.supports_scale else "  [no --scale]"
        print(f"  {name:8s} {spec.description}{suffix}")
    for key in ("models", "datasets", "methods", "prefill_gpus"):
        print(f"{key}: {', '.join(catalog[key])}")
    print("method families (spec grammar: family?key=val,… — defaults "
          "shown):")
    for name, fam in method_families().items():
        print(f"  {fam.signature():42s} {fam.description}")
    print("arrival processes (--arrival, same grammar — defaults shown):")
    for name, fam in arrival_processes().items():
        print(f"  {fam.signature():42s} {fam.description}")
    print("scheduling policies (--scheduler dispatch[+placement], same "
          "grammar):")
    print(" dispatch:")
    for name, cls in dispatch_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print(" placement:")
    for name, cls in placement_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print("KV-store families (--kvstore family?key=val+eviction, same "
          "grammar):")
    for name, fam in kvstore_families().items():
        print(f"  {fam.signature():42s} {fam.description}")
    print(" eviction:")
    for name, cls in eviction_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print("selection policies (--selection, same grammar):")
    for name, cls in selection_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print("fault families (--faults family?key=val+family…, same "
          "grammar):")
    for name, cls in fault_families().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print("recovery policies (--recovery, same grammar):")
    for name, cls in recovery_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print("autoscaler policies (--autoscaler, same grammar):")
    for name, cls in autoscaler_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    print("admission policies (--admission, same grammar):")
    for name, cls in admission_policies().items():
        print(f"  {cls.signature():42s} {cls.description}")
    return 0


# -- parser -------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hack-repro",
        description="Run HACK-repro scenarios, sweeps and paper artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario or a predefined "
                         "paper artifact")
    run.add_argument("experiment", nargs="?", default=None,
                     choices=[*EXPERIMENTS, "all"],
                     help="optional predefined artifact name; omit to run "
                          "the scenario described by the flags")
    run.add_argument("--scale", type=float, default=None,
                     help="trace-size multiplier (smaller = faster)")
    _add_scenario_flags(run)
    _add_output_flags(run)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="run a cartesian scenario grid")
    sweep.add_argument("--axis", action="append", default=[],
                       metavar="FIELD=V1,V2,…",
                       help="sweep axis (repeatable); methods values may "
                            "join sets with '+'; method.<param> sweeps a "
                            "method-spec parameter, e.g. "
                            "method.partition_size=32,64,128,256; "
                            "kvstore.<param> sweeps a KV-store parameter, "
                            "e.g. kvstore.dram_gb=4,16,64")
    sweep.add_argument("--scale", type=float, default=None)
    _add_scenario_flags(sweep)
    _add_output_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    compare = sub.add_parser("compare", help="diff two artifacts or "
                             "artifact directories")
    compare.add_argument("a")
    compare.add_argument("b")
    compare.add_argument("--rtol", type=float, default=1e-9)
    compare.set_defaults(func=_cmd_compare)

    export = sub.add_parser("export", help="render saved artifacts")
    export.add_argument("artifacts", nargs="+")
    export.add_argument("--format", choices=("text", "md", "csv"),
                        default="text")
    export.set_defaults(func=_cmd_export)

    lst = sub.add_parser("list", help="list experiments, models, datasets, "
                         "methods and GPUs")
    lst.add_argument("--json", action="store_true")
    lst.set_defaults(func=_cmd_list)

    lint = sub.add_parser("lint", help="run the repo invariant checker "
                          "(determinism, registry hygiene, schema "
                          "discipline)")
    add_lint_arguments(lint)
    lint.set_defaults(func=run_lint_from_args)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy aliases: `fig9 --scale 0.5` and `all` are `run` spellings.
    if argv and argv[0] in EXPERIMENTS or argv[:1] == ["all"]:
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        # Registry lookups and scenario validation raise with precise
        # messages; surface them as CLI errors, not tracebacks.  A bare
        # KeyError payload (a lone key, e.g. from a malformed artifact)
        # carries no context, so name the exception class alongside it.
        message = exc.args[0] if exc.args else str(exc)
        if isinstance(exc, KeyError) and " " not in str(message):
            message = f"missing or unknown key {message!r}"
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
