"""Core of ``repro lint``: findings, rules, pragmas and file contexts.

The linter enforces the repo's three unwritten laws — bit-level
determinism, open-registry hygiene and schema discipline — as
machine-checked rules.  A rule is a class registered with
:func:`register_rule` (the same open-registry idiom the rules police);
it inspects one file's AST (:meth:`Rule.check_file`) or the whole tree
at once (:meth:`Rule.check_project`, for cross-file invariants like
catalog coverage) and yields :class:`Finding` objects.

Suppression is explicit and auditable: a ``# repro: lint-ignore[CODE]``
comment on the offending line (or on its own line directly above)
silences exactly the named codes there, and pragmas that suppress
nothing are themselves findings (``REPRO700``), so stale ignores cannot
accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "ProjectContext",
    "register_rule",
    "lint_rules",
    "get_rule",
    "PRAGMA_RE",
]

#: ``# repro: lint-ignore[CODE]`` (one code or a comma list) — a
#: trailing free-text justification after the bracket is encouraged.
PRAGMA_RE = re.compile(r"#\s*repro:\s*lint-ignore\[([A-Z0-9_,\s]+)\]")

_CODE_RE = re.compile(r"^REPRO\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-root-relative posix path
    line: int  #: 1-based
    code: str  #: e.g. ``REPRO101``
    message: str
    rule: str = ""  #: rule name slug, e.g. ``unseeded-module-rng``

    def signature(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift as files are edited,
        so grandfathered findings match on (code, path, message)."""
        return (self.code, self.path, self.message)

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "code": self.code,
                "message": self.message, "rule": self.rule}

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


class FileContext:
    """One parsed source file, with its pragma map.

    ``relpath`` is the repo-root-relative posix path the scoping and
    baseline machinery key on; tests may pass a synthetic one to lint a
    fixture *as if* it lived elsewhere (e.g. under ``src/repro/sim/``).
    """

    def __init__(self, relpath: str, source: str):
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.syntax_error: SyntaxError | None = None
        try:
            self.tree: ast.AST | None = ast.parse(source)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        #: line (1-based) -> set of suppressed codes at that line.
        self.pragmas: dict[int, set[str]] = {}
        #: pragma anchor line -> line the pragma comment sits on (they
        #: differ for standalone comment-line pragmas).
        self._pragma_at: dict[int, int] = {}
        self._scan_pragmas()

    @classmethod
    def read(cls, path: Path, relpath: str) -> "FileContext":
        return cls(relpath, path.read_text())

    def _scan_pragmas(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(text)
            if not match:
                continue
            codes = {c.strip() for c in match.group(1).split(",")
                     if _CODE_RE.match(c.strip())}
            if not codes:
                # Mentions of the pragma syntax in prose (e.g.
                # ``lint-ignore[CODE]`` in a docstring) are not pragmas.
                continue
            target = lineno
            if text.strip().startswith("#"):
                # Standalone pragma line: applies to the next
                # non-blank line (the statement it annotates).
                for follow in range(lineno + 1, len(self.lines) + 1):
                    if self.lines[follow - 1].strip():
                        target = follow
                        break
            self.pragmas.setdefault(target, set()).update(codes)
            self._pragma_at[target] = lineno

    def suppresses(self, finding: Finding) -> bool:
        return finding.code in self.pragmas.get(finding.line, ())

    def pragma_line(self, target: int) -> int:
        """The source line the pragma covering ``target`` sits on."""
        return self._pragma_at.get(target, target)

    def source_segment(self, node: ast.AST) -> str | None:
        return ast.get_source_segment(self.source, node)

    def finding(self, rule: "Rule", node: ast.AST | int,
                message: str) -> Finding:
        line = node if isinstance(node, int) \
            else getattr(node, "lineno", 1)
        return Finding(path=self.relpath, line=line, code=rule.code,
                       message=message, rule=rule.name)


class ProjectContext:
    """The whole walked tree, for cross-file (project) rules."""

    def __init__(self, root: Path, files: list[FileContext]):
        self.root = root
        self.files = files
        self._by_path = {ctx.relpath: ctx for ctx in files}

    def get(self, relpath: str) -> FileContext | None:
        """The walked file at ``relpath``, loading it on demand when
        the walk was restricted to an explicit path list."""
        ctx = self._by_path.get(relpath)
        if ctx is None and (self.root / relpath).is_file():
            ctx = FileContext.read(self.root / relpath, relpath)
            self._by_path[relpath] = ctx
        return ctx


class Rule:
    """Base class for lint rules (subclass + :func:`register_rule`).

    File rules implement :meth:`check_file`; project rules set
    ``project_rule = True`` and implement :meth:`check_project` (run
    once per lint, after every file is parsed).  ``scope`` restricts a
    file rule to repo-relative path prefixes; empty means every walked
    file.
    """

    code: str = ""
    name: str = "abstract"
    description: str = ""
    scope: tuple[str, ...] = ()
    project_rule: bool = False

    def applies(self, relpath: str) -> bool:
        if not self.scope:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check_file(self, ctx: FileContext):
        return ()

    def check_project(self, project: ProjectContext):
        return ()


_RULES: dict[str, Rule] = {}


def register_rule(cls=None, *, replace: bool = False):
    """Class decorator registering a :class:`Rule` (open registry —
    project-local rules can be added the same way, exactly like
    ``@register_family`` and friends)."""

    def decorator(obj):
        rule = obj() if isinstance(obj, type) else obj
        if not _CODE_RE.match(rule.code or ""):
            raise ValueError(
                f"rule code {rule.code!r} must match {_CODE_RE.pattern}")
        if rule.code in _RULES and not replace:
            raise ValueError(
                f"lint rule {rule.code!r} is already registered; pass "
                "register_rule(replace=True) to override")
        taken = {r.name for c, r in _RULES.items() if c != rule.code}
        if rule.name in taken:
            raise ValueError(
                f"lint rule name {rule.name!r} is already registered")
        _RULES[rule.code] = rule
        return obj

    if cls is not None:
        return decorator(cls)
    return decorator


def lint_rules() -> dict[str, Rule]:
    """All registered rules by code (a copy; registration order)."""
    return dict(_RULES)


def get_rule(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {code!r}; choose from "
            f"{', '.join(sorted(_RULES))}") from None
