"""``repro.lint``: an AST-based invariant checker for this repo.

The codebase rests on conventions nothing else enforces — bit-level
determinism, ten open ``family?k=v`` registries whose names, catalogs
and CLI listings must stay in sync, and schema-versioned artifacts
where a key change without a version bump silently breaks ``compare``.
This package turns those conventions into machine-checked law: a
pluggable rule registry (:func:`~repro.lint.core.register_rule`) over a
shared AST framework, per-rule codes, ``# repro: lint-ignore[CODE]``
pragmas, a committed ``lint_baseline.json`` ratchet and text/JSON
reporters, wired up as ``repro lint`` (also the ``repro-lint`` console
script) and a required CI gate.

See the README's "Static analysis & invariants" section for the rule
catalog and how to register a project-local rule.
"""

from .baseline import BASELINE_NAME, load_baseline, write_baseline
from .core import (
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    get_rule,
    lint_rules,
    register_rule,
)
from .runner import LintResult, collect_files, discover_root, run_lint
from .report import render_json, render_text
from . import rules  # noqa: F401  (registers the built-in rules)

__all__ = [
    "BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintResult",
    "ProjectContext",
    "Rule",
    "collect_files",
    "discover_root",
    "get_rule",
    "lint_rules",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
