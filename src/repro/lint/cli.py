"""``repro lint`` / ``repro-lint``: the invariant gate's command line.

::

    python -m repro.lint.cli                  # lint the repo, gate on
                                              # lint_baseline.json
    python -m repro.lint.cli --json           # machine-readable report
    python -m repro.lint.cli --baseline-update   # re-ratchet
    python -m repro.lint.cli --schema-pin-update # after a schema bump
    python -m repro.lint.cli path/to/file.py --no-baseline
    python -m repro.lint.cli --list-rules

Exit status 1 means new (non-baselined, non-suppressed) findings.
The same flags hang off the main CLI as ``hack-repro lint``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import BASELINE_NAME, write_baseline
from .core import ProjectContext, lint_rules
from .report import render_json, render_text
from .runner import discover_root, run_lint
from .rules.schema import write_pin

__all__ = ["main", "add_lint_arguments", "run_from_args"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The lint flags, attachable to any argparse parser (the main
    CLI's ``lint`` subcommand reuses them verbatim)."""
    parser.add_argument("paths", nargs="*", type=Path,
                        help="lint only these files/directories "
                             "(skips the cross-file project rules); "
                             "default walks src/, tests/, benchmarks/ "
                             "and examples/")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="PATH",
                        help=f"baseline file (default <repo>/"
                             f"{BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: report every finding")
    parser.add_argument("--baseline-update", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings (ratchet, don't suppress)")
    parser.add_argument("--schema-pin-update", action="store_true",
                        help="refresh the REPRO501 schema pin after a "
                             "SCHEMA_VERSION bump")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule-code prefixes to "
                             "run, e.g. REPRO1,REPRO604")
    parser.add_argument("--verbose", action="store_true",
                        help="also print baselined and suppressed "
                             "findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")


def run_from_args(args) -> int:
    if args.list_rules:
        for code, rule in sorted(lint_rules().items()):
            scope = ", ".join(rule.scope) if rule.scope else (
                "project-wide" if rule.project_rule else "all files")
            print(f"{code} {rule.name:32s} [{scope}]")
            print(f"    {rule.description}")
        return 0

    root = discover_root()
    if args.schema_pin_update:
        pin = write_pin(ProjectContext(root, []))
        print(f"schema pin refreshed for schema_version "
              f"{pin['schema_version']}", file=sys.stderr)
        if not args.baseline_update:
            return 0

    select = tuple(s.strip() for s in args.select.split(",")
                   if s.strip()) if args.select else ()
    result = run_lint(
        root,
        paths=args.paths or None,
        baseline_path=args.baseline,
        use_baseline=not (args.no_baseline or args.baseline_update),
        select=select,
    )

    if args.baseline_update:
        path = args.baseline or result.root / BASELINE_NAME
        write_baseline(path, result.findings)
        print(f"baseline updated: {len(result.findings)} finding"
              f"{'s' if len(result.findings) != 1 else ''} -> {path}",
              file=sys.stderr)
        return 0

    print(render_json(result) if args.json
          else render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker: determinism, "
                    "registry hygiene, schema discipline.")
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
