"""Walking, rule dispatch, pragma suppression and the baseline gate.

:func:`run_lint` is the one entry point the CLI, the CI gate, the
benchmark and the meta-test all share: collect files, run every file
rule in scope plus the project rules, drop pragma-suppressed findings
(flagging pragmas that suppressed nothing), then split what remains
against the committed baseline.  Explicit ``paths`` restrict the walk
to those files and skip project rules — that mode lints *files*, not
the repository invariants around them (it is what the CI fixture-smoke
uses to prove the gate can fail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .baseline import BASELINE_NAME, load_baseline, split_baselined
from .core import FileContext, Finding, ProjectContext, lint_rules
from . import rules as _rules  # noqa: F401  (registers the built-ins)

__all__ = ["run_lint", "collect_files", "discover_root", "LintResult",
           "DEFAULT_ROOTS", "EXCLUDED_PREFIXES"]

#: Repo-relative directories walked by default.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples")

#: Walked-path prefixes always skipped: lint fixtures violate rules on
#: purpose.
EXCLUDED_PREFIXES = ("tests/lint/fixtures/",)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    root: Path
    n_files: int
    #: Findings not absorbed by the baseline — the gate fails on these.
    findings: list[Finding] = field(default_factory=list)
    #: Findings the committed baseline grandfathers.
    baselined: list[Finding] = field(default_factory=list)
    #: Findings silenced by a ``lint-ignore`` pragma.
    suppressed: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (ratchet candidates).
    stale_baseline: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_files": self.n_files,
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [f.to_dict() for f in self.stale_baseline],
        }


def discover_root(start: Path | None = None) -> Path:
    """The repo root: the nearest ancestor holding ``pyproject.toml``."""
    probe = (start or Path.cwd()).resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def collect_files(root: Path,
                  paths: list[Path] | None = None) -> list[FileContext]:
    """Parse the default tree (or the explicit ``paths``) into
    :class:`FileContext` objects, sorted by relpath for deterministic
    finding order."""
    selected: list[Path] = []
    if paths:
        for path in paths:
            path = path.resolve()
            if path.is_dir():
                selected.extend(sorted(path.rglob("*.py")))
            else:
                selected.append(path)
    else:
        for sub in DEFAULT_ROOTS:
            base = root / sub
            if base.is_dir():
                selected.extend(sorted(base.rglob("*.py")))
    contexts: list[FileContext] = []
    for path in selected:
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        if "__pycache__" in relpath:
            continue
        if not paths and any(relpath.startswith(p)
                             for p in EXCLUDED_PREFIXES):
            continue
        contexts.append(FileContext.read(path, relpath))
    contexts.sort(key=lambda ctx: ctx.relpath)
    return contexts


def _syntax_findings(ctx: FileContext) -> list[Finding]:
    if ctx.syntax_error is None:
        return []
    return [Finding(path=ctx.relpath,
                    line=ctx.syntax_error.lineno or 1,
                    code="REPRO900",
                    message=f"syntax error: {ctx.syntax_error.msg}",
                    rule="parse-error")]


def run_lint(root: Path | None = None, *,
             paths: list[Path] | None = None,
             baseline_path: Path | None = None,
             use_baseline: bool = True,
             select: tuple[str, ...] = ()) -> LintResult:
    """Lint the repo (or ``paths``) and gate against the baseline.

    ``select`` restricts to rule codes with any of the given prefixes
    (e.g. ``("REPRO1", "REPRO604")``); project rules only run on
    whole-repo walks.
    """
    root = discover_root(root)
    files = collect_files(root, paths)
    project = ProjectContext(root, files)
    active = [rule for rule in lint_rules().values()
              if not select or rule.code.startswith(tuple(select))]

    raw: list[Finding] = []
    for ctx in files:
        raw.extend(_syntax_findings(ctx))
        for rule in active:
            if not rule.project_rule and rule.applies(ctx.relpath):
                raw.extend(rule.check_file(ctx))
    if paths is None:
        for rule in active:
            if rule.project_rule:
                raw.extend(rule.check_project(project))

    kept, suppressed = _apply_pragmas(project, raw)
    kept.extend(_unused_pragmas(project, files, suppressed,
                                select=select))

    baseline: list[Finding] = []
    if use_baseline:
        baseline = load_baseline(
            baseline_path or root / BASELINE_NAME)
    new, baselined, stale = split_baselined(kept, baseline)
    return LintResult(root=root, n_files=len(files), findings=new,
                      baselined=baselined, suppressed=sorted(suppressed),
                      stale_baseline=stale)


def _apply_pragmas(project: ProjectContext, raw: list[Finding]):
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        ctx = project.get(finding.path)
        if ctx is not None and ctx.suppresses(finding):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


def _unused_pragmas(project: ProjectContext, files: list[FileContext],
                    suppressed: list[Finding],
                    select: tuple[str, ...] = ()) -> list[Finding]:
    """A ``lint-ignore`` that suppressed nothing is itself a finding —
    stale ignores would otherwise silently pile up.  Skipped under
    ``--select`` (most rules did not run, so "unused" is meaningless).
    """
    if select:
        return []
    used = {(f.path, f.line, f.code) for f in suppressed}
    out: list[Finding] = []
    for ctx in files:
        for target, codes in sorted(ctx.pragmas.items()):
            for code in sorted(codes):
                if (ctx.relpath, target, code) not in used:
                    out.append(Finding(
                        path=ctx.relpath, line=ctx.pragma_line(target),
                        code="REPRO700",
                        message=f"lint-ignore[{code}] suppresses "
                                "nothing; remove the stale pragma",
                        rule="unused-pragma"))
    return out
