"""Grammar round-trip rules: ``parse(canonical(spec)) == spec``.

Every registry speaks the same ``family?k=v`` string grammar, and the
whole scenario/artifact machinery assumes the canonical string form is
a fixed point: parsing it must reproduce the spec, and canonicalizing
it again must reproduce the string (slugs, artifact file names and
sweep-axis labels all depend on it).  REPRO301 *executes* that law for
every registered family — bare name and full default signature — by
importing the live registries, so a family whose parameter formatting
drifts is caught before any scenario slug does.  REPRO302 enforces the
cross-role uniqueness the pair grammars rely on (a bare ``--scheduler``
or ``--kvstore`` name must resolve to exactly one role), plus the
legacy-alias shadowing hazard in the method grammar.
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

from ..core import Finding, ProjectContext, Rule, register_rule

__all__ = ["RoundTripRule", "CrossRoleUniquenessRule", "REGISTRIES"]

#: (role, module, enumerator, parse, canonical) for every registry
#: speaking the ``family?k=v`` grammar.  The catalog-coverage rule
#: (REPRO401) discovers enumerators statically; this table is the
#: import-side mirror and is itself covered by REPRO401's sweep (an
#: enumerator missing here still has to show up in ``cli list``).
REGISTRIES = (
    ("method", "repro.methods.spec",
     "method_families", "parse_method", "canonical_method"),
    ("arrival", "repro.workload.arrivals",
     "arrival_processes", "parse_arrival", "canonical_arrival"),
    ("dispatch", "repro.sim.scheduling",
     "dispatch_policies", "parse_scheduler", "canonical_scheduler"),
    ("placement", "repro.sim.scheduling",
     "placement_policies", "parse_scheduler", "canonical_scheduler"),
    ("kvstore", "repro.kvstore.spec",
     "kvstore_families", "parse_kvstore", "canonical_kvstore"),
    ("eviction", "repro.kvstore.spec",
     "eviction_policies", "parse_kvstore", "canonical_kvstore"),
    ("selection", "repro.kvstore.selection",
     "selection_policies", "parse_selection", "canonical_selection"),
    ("fault", "repro.sim.faults",
     "fault_families", "parse_faults", "canonical_faults"),
    ("recovery", "repro.sim.recovery",
     "recovery_policies", "parse_recovery", "canonical_recovery"),
    ("autoscaler", "repro.sim.elastic",
     "autoscaler_policies", "parse_autoscaler", "canonical_autoscaler"),
    ("admission", "repro.sim.elastic",
     "admission_policies", "parse_admission", "canonical_admission"),
)


def _anchor(project: ProjectContext, obj) -> tuple[str, int]:
    """(relpath, line) of a registered family/policy's definition, for
    attaching findings (and pragmas) to the offending declaration."""
    target = obj if inspect.isclass(obj) else type(obj)
    try:
        path = Path(inspect.getsourcefile(target))
        _, line = inspect.getsourcelines(target)
        return path.relative_to(project.root).as_posix(), line
    except (TypeError, OSError, ValueError):
        return "src/repro/__init__.py", 1


def check_roundtrip(names_to_objs: dict, parse, canonical,
                    signature_of=None):
    """Round-trip every family through its grammar; yields
    ``(obj, text, problem)`` tuples for failures.

    Checked per family: the bare name and the full default signature
    (every parameter spelled out) both satisfy
    ``parse(canonical(text)) == parse(text)`` with an idempotent
    canonical form.  ``signature_of`` defaults to the registered
    object's ``signature()``.
    """
    for name, obj in names_to_objs.items():
        texts = [name]
        sig = None
        if signature_of is not None:
            sig = signature_of(obj)
        elif hasattr(obj, "signature"):
            sig = obj.signature()
        if sig and sig != name:
            texts.append(sig)
        for text in texts:
            try:
                spec = parse(text)
                canon = canonical(text)
                respec = parse(canon)
                recanon = canonical(canon)
            except Exception as exc:
                yield obj, text, f"raised {type(exc).__name__}: {exc}"
                continue
            if respec != spec:
                yield (obj, text,
                       f"parse({canon!r}) != parse({text!r}) — canonical "
                       "form does not round-trip")
            elif recanon != canon:
                yield (obj, text,
                       f"canonical is not idempotent: {canon!r} -> "
                       f"{recanon!r}")


@register_rule
class RoundTripRule(Rule):
    code = "REPRO301"
    name = "grammar-round-trip"
    description = (
        "parse(canonical(spec)) must equal spec for every registered "
        "family (bare name and full default signature)")
    project_rule = True

    #: Overridable in tests: same shape as :data:`REGISTRIES`.
    table = REGISTRIES

    def check_project(self, project: ProjectContext):
        for role, module_name, enum_name, parse_name, canon_name \
                in self.table:
            module = importlib.import_module(module_name)
            families = getattr(module, enum_name)()
            parse = getattr(module, parse_name)
            canonical = getattr(module, canon_name)
            for obj, text, problem in check_roundtrip(
                    families, parse, canonical):
                path, line = _anchor(project, obj)
                yield Finding(
                    path=path, line=line, code=self.code,
                    message=f"{role} family grammar broken for "
                            f"{text!r}: {problem}",
                    rule=self.name)


@register_rule
class CrossRoleUniquenessRule(Rule):
    code = "REPRO302"
    name = "cross-role-uniqueness"
    description = (
        "registries sharing a pair grammar must not reuse names "
        "across roles, and legacy method aliases must not shadow a "
        "different family")
    project_rule = True

    def check_project(self, project: ProjectContext):
        from repro.kvstore.spec import eviction_policies, kvstore_families
        from repro.sim.scheduling import dispatch_policies, \
            placement_policies

        pairs = (
            ("dispatch", dispatch_policies(),
             "placement", placement_policies()),
            ("kvstore family", kvstore_families(),
             "eviction", eviction_policies()),
        )
        for role_a, reg_a, role_b, reg_b in pairs:
            for name in sorted(set(reg_a) & set(reg_b)):
                path, line = _anchor(project, reg_b[name])
                yield Finding(
                    path=path, line=line, code=self.code,
                    message=f"name {name!r} is registered as both a "
                            f"{role_a} and a {role_b}; a bare name in "
                            "the pair grammar must resolve to one role",
                    rule=self.name)

        # A legacy method alias resolves before families in
        # parse_method, so an alias naming a *different* family makes
        # that family unreachable by its own name.
        from repro.methods import spec as method_spec_mod
        legacy = method_spec_mod._LEGACY
        families = method_spec_mod.method_families()
        for alias, entry in legacy.items():
            if alias in families and entry.spec.family != alias:
                path, line = _anchor(project, families[alias])
                yield Finding(
                    path=path, line=line, code=self.code,
                    message=f"legacy alias {alias!r} (-> family "
                            f"{entry.spec.family!r}) shadows the "
                            f"registered family {alias!r}",
                    rule=self.name)
