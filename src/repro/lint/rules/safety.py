"""General-safety rules: the slow-burn bug classes review keeps missing.

Mutable default arguments alias state across calls (REPRO601); a bare
``except:`` swallows KeyboardInterrupt and SystemExit along with the
bug it was papering over (REPRO603).  The two float rules are scoped
and deliberately narrow: they flag equality against a float literal
only when the decimal text is *not exactly representable* in binary
(``x == 0.3`` can only pass by double-rounding coincidence), while the
repo's intentional bit-exact comparisons — ``span == token`` results,
dyadic constants like ``0.5`` or ``1.0`` — stay legal.  REPRO602
covers engine/perf-model code, REPRO604 covers assertions under
``tests/`` (use ``pytest.approx`` / ``math.isclose``, or a pragma for
a genuinely bit-exact check).
"""

from __future__ import annotations

import ast
from decimal import Decimal, InvalidOperation
from fractions import Fraction

from ..core import FileContext, Rule, register_rule

__all__ = ["MutableDefaultRule", "FloatEqualitySimRule", "BareExceptRule",
           "FloatAssertTestRule", "is_exact_float_literal"]


def is_exact_float_literal(text: str) -> bool:
    """True when the decimal literal ``text`` is exactly representable
    as a binary float — equality against it can be intentional.
    ``0.5``/``1.0``/``0.25`` pass; ``0.3``/``1e-9``/``3.333`` fail."""
    text = text.replace("_", "")
    try:
        exact = Fraction(Decimal(text))
    except (InvalidOperation, ValueError, OverflowError):
        return True  # not a plain decimal literal; stay quiet
    try:
        return Fraction(float(text)) == exact
    except (OverflowError, ValueError):
        return True


def _inexact_float_operands(ctx: FileContext, compare: ast.Compare):
    """Float-literal operands of an ==/!= comparison whose decimal text
    is not exactly representable."""
    ops = [compare.left, *compare.comparators]
    flags = [isinstance(op, (ast.Eq, ast.NotEq)) for op in compare.ops]
    for index, operand in enumerate(ops):
        # operand i participates in comparisons i-1 and i.
        involved = (index > 0 and flags[index - 1]) or \
            (index < len(flags) and flags[index])
        if isinstance(operand, ast.UnaryOp) \
                and isinstance(operand.op, (ast.USub, ast.UAdd)):
            operand = operand.operand
        if not involved or not isinstance(operand, ast.Constant) \
                or not isinstance(operand.value, float):
            continue
        text = ctx.source_segment(operand)
        if text is not None and not is_exact_float_literal(text):
            yield operand, text


@register_rule
class MutableDefaultRule(Rule):
    code = "REPRO601"
    name = "mutable-default-argument"
    description = (
        "list/dict/set default arguments are shared across calls; "
        "default to None (or a tuple) and build inside")

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults
                          if d is not None)]
            for default in defaults:
                mutable = isinstance(default, (
                    ast.List, ast.Dict, ast.Set, ast.ListComp,
                    ast.DictComp, ast.SetComp))
                if not mutable and isinstance(default, ast.Call) \
                        and isinstance(default.func, ast.Name) \
                        and default.func.id in ("list", "dict", "set"):
                    mutable = True
                if mutable:
                    yield ctx.finding(
                        self, default,
                        "mutable default argument is evaluated once "
                        "and shared across calls; default to None and "
                        "build inside the function")


@register_rule
class FloatEqualitySimRule(Rule):
    code = "REPRO602"
    name = "float-equality-sim"
    description = (
        "equality against a non-representable float literal in the "
        "engine/perf model can only hold by rounding coincidence")
    scope = ("src/repro/sim/", "src/repro/perfmodel/")

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            for operand, text in _inexact_float_operands(ctx, node):
                yield ctx.finding(
                    self, operand,
                    f"float equality against {text} (not exactly "
                    "representable in binary); compare against a "
                    "tolerance or a dyadic constant")


@register_rule
class BareExceptRule(Rule):
    code = "REPRO603"
    name = "bare-except"
    description = (
        "a bare `except:` swallows KeyboardInterrupt/SystemExit; "
        "catch Exception or the specific error")

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare `except:`; name the exception type (at "
                    "broadest, `except Exception`)")


@register_rule
class FloatAssertTestRule(Rule):
    code = "REPRO604"
    name = "tolerance-free-float-assert"
    description = (
        "test asserts equality against a non-representable float "
        "literal; use pytest.approx / math.isclose (or pragma a "
        "deliberate bit-exact check)")
    scope = ("tests/",)

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assert):
                continue
            for sub in ast.walk(node.test):
                if not isinstance(sub, ast.Compare):
                    continue
                for operand, text in _inexact_float_operands(ctx, sub):
                    yield ctx.finding(
                        self, operand,
                        f"assert compares against {text}, which no "
                        "float computation can hit exactly; use "
                        "pytest.approx / math.isclose or a dyadic "
                        "literal")
