"""Built-in rule families.  Importing this package registers them all.

=========  ===============================  =============================
code       rule                             family
=========  ===============================  =============================
REPRO101   unseeded-module-rng              determinism
REPRO102   wall-clock-read                  determinism
REPRO103   set-iteration-order              determinism
REPRO201   spec-must-freeze                 spec hygiene
REPRO202   duplicate-registration           spec hygiene
REPRO301   grammar-round-trip               grammar round-trip
REPRO302   cross-role-uniqueness            grammar round-trip
REPRO401   catalog-coverage                 catalog coverage
REPRO501   schema-discipline                schema discipline
REPRO601   mutable-default-argument         general safety
REPRO602   float-equality-sim               general safety
REPRO603   bare-except                      general safety
REPRO604   tolerance-free-float-assert      general safety
REPRO700   unused-pragma                    (emitted by the runner)
REPRO900   parse-error                      (emitted by the runner)
=========  ===============================  =============================
"""

from . import catalog, determinism, roundtrip, safety, schema, \
    spec_hygiene  # noqa: F401

__all__ = ["catalog", "determinism", "roundtrip", "safety", "schema",
           "spec_hygiene"]
