"""Determinism rules: no global RNG, no wall clocks, no set ordering.

The repo's headline invariant is bit-level reproducibility — span and
token stepping agree at 1e-9, parallel and serial runners emit
byte-identical artifacts, fault timelines are md5-seeded.  Each rule
here bans a construct that silently breaks that: module-level RNG
draws share hidden global state (REPRO101), wall-clock reads leak the
machine's time into results (REPRO102), and iterating a set hands the
simulation a hash-order-dependent event order (REPRO103).
"""

from __future__ import annotations

import ast

from ..core import FileContext, Rule, register_rule

__all__ = ["UnseededRngRule", "WallClockRule", "SetIterationRule"]

#: numpy.random module-level samplers (legacy global-state API).  The
#: seeded object API — ``default_rng``/``Generator``/``RandomState``/
#: ``SeedSequence`` — is the sanctioned spelling and is not flagged.
_NP_GLOBAL = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "laplace",
    "lognormal", "multinomial", "multivariate_normal", "normal",
    "pareto", "permutation", "poisson", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
})

#: stdlib ``random`` module-level functions (shared Mersenne state).
_STDLIB_GLOBAL = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Wall-clock reads, by dotted name.  ``time.perf_counter`` (a
#: monotonic duration clock that never lands in artifacts) stays legal.
_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})


def _import_map(tree: ast.AST) -> dict[str, str]:
    """Local name -> dotted module/attribute it is bound to, for plain
    imports and from-imports (``import numpy as np`` -> np: numpy;
    ``from time import time`` -> time: time.time)."""
    bound: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                bound[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return bound


def _dotted(node: ast.expr) -> list[str] | None:
    """``np.random.rand`` -> ["np", "random", "rand"]; None when the
    expression is not a plain dotted name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


def _resolve_call(func: ast.expr, bound: dict[str, str]) -> str | None:
    """The fully-qualified dotted name a call resolves to, or None."""
    parts = _dotted(func)
    if parts is None:
        return None
    head = bound.get(parts[0])
    if head is None:
        return None
    return ".".join([head, *parts[1:]])


@register_rule
class UnseededRngRule(Rule):
    code = "REPRO101"
    name = "unseeded-module-rng"
    description = (
        "module-level np.random.* / random.* calls draw from hidden "
        "global state; use a seeded np.random.default_rng / "
        "random.Random instance")
    scope = ("src/repro/",)

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        bound = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _resolve_call(node.func, bound)
            if qualified is None:
                continue
            parts = qualified.split(".")
            if parts[:2] == ["numpy", "random"] and len(parts) == 3 \
                    and parts[2] in _NP_GLOBAL:
                yield ctx.finding(
                    self, node,
                    f"np.random.{parts[2]}() uses the global numpy RNG; "
                    "draw from a seeded np.random.default_rng(seed)")
            elif parts[0] == "random" and len(parts) == 2 \
                    and parts[1] in _STDLIB_GLOBAL:
                yield ctx.finding(
                    self, node,
                    f"random.{parts[1]}() uses the shared module RNG; "
                    "draw from a seeded random.Random(seed)")


@register_rule
class WallClockRule(Rule):
    code = "REPRO102"
    name = "wall-clock-read"
    description = (
        "wall-clock reads (time.time, datetime.now, …) leak machine "
        "time into deterministic code; use time.perf_counter for "
        "durations and pass timestamps in explicitly")
    scope = ("src/repro/",)

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        bound = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _resolve_call(node.func, bound)
            if qualified in _WALL_CLOCKS:
                yield ctx.finding(
                    self, node,
                    f"{qualified}() reads the wall clock; use "
                    "time.perf_counter() for durations or take the "
                    "timestamp as a parameter")


_SET_NODES = (ast.Set, ast.SetComp)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, _SET_NODES):
        return True
    return isinstance(node, ast.Call) \
        and isinstance(node.func, ast.Name) \
        and node.func.id in ("set", "frozenset")


@register_rule
class SetIterationRule(Rule):
    code = "REPRO103"
    name = "set-iteration-order"
    description = (
        "iterating a bare set in engine/scheduling hot paths makes "
        "event order depend on hash seeds; wrap in sorted(...)")
    scope = ("src/repro/sim/",)

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield ctx.finding(
                        self, it,
                        "iteration over a set literal/constructor has "
                        "hash-order-dependent element order; iterate "
                        "sorted(...) or keep a list")
