"""Spec-hygiene rules: frozen ``*Spec`` dataclasses, unique registrations.

Every ``*Spec`` in the repo is a frozen dataclass by convention — specs
are hashable sweep-axis values and dict keys, and a mutable spec would
silently break canonicalization and artifact identity (REPRO201).  The
ten open ``family?k=v`` registries each resolve a bare name to one
family; two ``@register_*`` declarations claiming the same name in the
same role namespace would make resolution import-order-dependent
(REPRO202) — the runtime raises at import time, but only on the import
path that happens to load both, which is exactly the kind of landmine
a static pass should defuse.
"""

from __future__ import annotations

import ast

from ..core import FileContext, ProjectContext, Rule, register_rule

__all__ = ["FrozenSpecRule", "DuplicateRegistrationRule"]


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` / ``@dataclasses.dataclass`` decorator node
    (bare or called), or None."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return deco
    return None


@register_rule
class FrozenSpecRule(Rule):
    code = "REPRO201"
    name = "spec-must-freeze"
    description = (
        "*Spec dataclasses are canonical, hashable values; declare "
        "them @dataclass(frozen=True)")
    scope = ("src/",)

    def check_file(self, ctx: FileContext):
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) \
                    or not node.name.endswith("Spec"):
                continue
            deco = _dataclass_decorator(node)
            if deco is None:
                continue
            frozen = isinstance(deco, ast.Call) and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords)
            if not frozen:
                yield ctx.finding(
                    self, node,
                    f"dataclass {node.name!r} ends in 'Spec' but is not "
                    "frozen; declare @dataclass(frozen=True)")


#: ``@register_*`` decorator name -> role namespace.  Decorators that
#: share a string grammar share a namespace (a bare name must resolve
#: to exactly one role): scheduling's dispatch+placement pair and the
#: KV store's family+eviction pair.  Unknown register_* decorators
#: default to their own name, so a brand-new registry is covered the
#: moment it exists.
_NAMESPACES = {
    "register_family": "method",
    "register_arrival": "arrival",
    "register_policy": "scheduler",
    "register_eviction": "kvstore",
    "register_kvstore_family": "kvstore",
    "register_selection": "selection",
    "register_fault": "fault",
    "register_recovery": "recovery",
    "register_autoscaler": "autoscaler",
    "register_admission": "admission",
    "register_rule": "lint-rule",
}


def _registrations(ctx: FileContext):
    """Yield (namespace, family_name, replace, classdef) for every
    statically-resolvable @register_* class in the file."""
    if ctx.tree is None:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if isinstance(target, ast.Attribute):
                deco_name = target.attr
            elif isinstance(target, ast.Name):
                deco_name = target.id
            else:
                continue
            if not deco_name.startswith("register_"):
                continue
            namespace = _NAMESPACES.get(deco_name, deco_name)
            replace = False
            name = None
            if isinstance(deco, ast.Call):
                for kw in deco.keywords:
                    if kw.arg == "replace" \
                            and isinstance(kw.value, ast.Constant):
                        replace = bool(kw.value.value)
                if deco.args and isinstance(deco.args[0], ast.Constant) \
                        and isinstance(deco.args[0].value, str):
                    name = deco.args[0].value
            if name is None:
                # Fall back to the class-body ``name = "..."`` attr.
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) \
                            and len(stmt.targets) == 1 \
                            and isinstance(stmt.targets[0], ast.Name) \
                            and stmt.targets[0].id == "name" \
                            and isinstance(stmt.value, ast.Constant) \
                            and isinstance(stmt.value.value, str):
                        name = stmt.value.value
                    elif isinstance(stmt, ast.AnnAssign) \
                            and isinstance(stmt.target, ast.Name) \
                            and stmt.target.id == "name" \
                            and isinstance(stmt.value, ast.Constant) \
                            and isinstance(stmt.value.value, str):
                        name = stmt.value.value
            if name is not None:
                yield namespace, name, replace, node


@register_rule
class DuplicateRegistrationRule(Rule):
    code = "REPRO202"
    name = "duplicate-registration"
    description = (
        "two @register_* declarations claim the same family name in "
        "one role namespace; resolution would be import-order-"
        "dependent")
    project_rule = True

    def check_project(self, project: ProjectContext):
        seen: dict[tuple[str, str], tuple[str, int]] = {}
        for ctx in project.files:
            if not ctx.relpath.startswith("src/"):
                continue
            for namespace, name, replace, node in _registrations(ctx):
                key = (namespace, name)
                if replace:
                    continue
                if key in seen:
                    first_path, first_line = seen[key]
                    yield ctx.finding(
                        self, node,
                        f"{namespace} family {name!r} is already "
                        f"registered at {first_path}:{first_line}; "
                        "rename it or pass replace=True")
                else:
                    seen[key] = (ctx.relpath, node.lineno)
