"""Catalog-coverage rule: ``cli list`` must surface every registry.

The CLI's ``list`` subcommand is the discoverability contract: every
open registry the grammar can name must appear in its catalog, both as
a ``--json`` key and in the human listing.  A registry module follows a
strict naming convention — a public zero-argument enumerator ending in
``_families`` / ``_policies`` / ``_processes`` returning the registry
dict — so REPRO401 can *discover* registries statically and then check
that ``_cmd_list``'s catalog literal has a key for each.  Adding an
eleventh registry without touching ``cli.py`` now fails the lint gate
instead of shipping an invisible subsystem.
"""

from __future__ import annotations

import ast

from ..core import FileContext, ProjectContext, Rule, register_rule

__all__ = ["CatalogCoverageRule", "enumerator_defs", "catalog_keys"]

_CLI_PATH = "src/repro/cli.py"
_ENUM_SUFFIXES = ("_families", "_policies", "_processes")
_NON_ENUM_PREFIXES = ("has_", "get_", "split_", "_")


def enumerator_defs(ctx: FileContext) -> list[tuple[str, int]]:
    """(name, line) of registry-enumerator functions defined at module
    level in one file: public, zero required arguments, named
    ``*_families`` / ``*_policies`` / ``*_processes``."""
    out: list[tuple[str, int]] = []
    if ctx.tree is None:
        return out
    for node in ctx.tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        name = node.name
        if not name.endswith(_ENUM_SUFFIXES) \
                or name.startswith(_NON_ENUM_PREFIXES):
            continue
        args = node.args
        required = len(args.posonlyargs) + len(args.args) \
            - len(args.defaults)
        if required or args.kwonlyargs and any(
                d is None for d in args.kw_defaults):
            continue
        out.append((name, node.lineno))
    return out


def catalog_keys(cli_ctx: FileContext) -> tuple[set[str], int] | None:
    """Literal string keys of the ``catalog`` dict inside ``_cmd_list``
    and the dict's line, or None when the structure is missing."""
    if cli_ctx.tree is None:
        return None
    for node in ast.walk(cli_ctx.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_cmd_list":
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign) \
                        and len(stmt.targets) == 1 \
                        and isinstance(stmt.targets[0], ast.Name) \
                        and stmt.targets[0].id == "catalog" \
                        and isinstance(stmt.value, ast.Dict):
                    keys = {k.value for k in stmt.value.keys
                            if isinstance(k, ast.Constant)
                            and isinstance(k.value, str)}
                    return keys, stmt.value.lineno
    return None


@register_rule
class CatalogCoverageRule(Rule):
    code = "REPRO401"
    name = "catalog-coverage"
    description = (
        "every registry enumerator under src/repro must have a key in "
        "the cli list catalog")
    project_rule = True

    #: Overridable in tests (fixture mini-repos).
    cli_path = _CLI_PATH

    def check_project(self, project: ProjectContext):
        cli_ctx = project.get(self.cli_path)
        if cli_ctx is None:
            return
        found = catalog_keys(cli_ctx)
        if found is None:
            yield cli_ctx.finding(
                self, 1,
                "_cmd_list no longer assigns a literal `catalog` dict; "
                "the catalog-coverage invariant cannot be checked")
            return
        keys, _ = found
        for ctx in project.files:
            if not ctx.relpath.startswith("src/repro/") \
                    or ctx.relpath.startswith("src/repro/lint/"):
                continue
            for name, line in enumerator_defs(ctx):
                if name not in keys:
                    yield ctx.finding(
                        self, line,
                        f"registry enumerator {name}() is not surfaced "
                        f"by `cli list` (no {name!r} key in the "
                        "_cmd_list catalog)")
