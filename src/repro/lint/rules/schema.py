"""Schema-discipline rule: metric keys may not change silently.

``RunArtifact`` JSON is schema-versioned (v1–v5) and ``compare`` /
``summary_table`` key directly off ``SUMMARY_METRICS``, the compare
scalars and the per-request record fields.  History shows the failure
mode: every key addition so far rode a version bump (v2 serving
metrics, v4 reliability keys, v5 cost pair) — adding a summary metric
*without* bumping ``SCHEMA_VERSION`` would make same-version artifacts
diff against each other and silently break ``compare``.

REPRO501 pins the current key surface in ``schema_pin.json`` next to
this module.  The pin is readable (the actual key lists, not a hash),
so its diff in a PR *is* the schema-change review.  The rule fails
when the keys drift while ``SCHEMA_VERSION`` stays put, and when the
version bumps it demands a pin refresh (``repro lint
--schema-pin-update``) so the committed pin always describes the
shipping schema.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from ..core import FileContext, ProjectContext, Rule, register_rule

__all__ = ["SchemaPinRule", "extract_schema", "PIN_PATH"]

PIN_PATH = Path(__file__).resolve().parent.parent / "schema_pin.json"

_ARTIFACT_PATH = "src/repro/api/artifact.py"
_REQUEST_PATH = "src/repro/sim/request.py"


def _module_tuple(ctx: FileContext, name: str) -> tuple[list, int] | None:
    """A module-level tuple-of-strings assignment, with its line."""
    if ctx.tree is None:
        return None
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name \
                and isinstance(node.value, ast.Tuple):
            values = [elt.value for elt in node.value.elts
                      if isinstance(elt, ast.Constant)
                      and isinstance(elt.value, str)]
            return values, node.lineno
    return None


def _module_int(ctx: FileContext, name: str) -> tuple[int, int] | None:
    if ctx.tree is None:
        return None
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            return node.value.value, node.lineno
    return None


def _record_fields(ctx: FileContext) -> tuple[list, int] | None:
    """All string dict-literal keys inside ``SimRequest.record`` —
    the per-request artifact fields, conditional branches included."""
    if ctx.tree is None:
        return None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == "SimRequest":
            for item in node.body:
                if isinstance(item, ast.FunctionDef) \
                        and item.name == "record":
                    keys: list[str] = []
                    for sub in ast.walk(item):
                        if isinstance(sub, ast.Dict):
                            keys.extend(
                                k.value for k in sub.keys
                                if isinstance(k, ast.Constant)
                                and isinstance(k.value, str))
                    return sorted(set(keys)), item.lineno
    return None


def extract_schema(project: ProjectContext) -> dict | None:
    """The current schema surface, statically extracted; None (plus no
    finding — the paths rule on missing files is REPRO501 itself) when
    the source structure moved."""
    artifact = project.get(_ARTIFACT_PATH)
    request = project.get(_REQUEST_PATH)
    if artifact is None or request is None:
        return None
    version = _module_int(artifact, "SCHEMA_VERSION")
    summary = _module_tuple(artifact, "SUMMARY_METRICS")
    compare = _module_tuple(artifact, "_COMPARE_SCALARS")
    record = _record_fields(request)
    if None in (version, summary, compare, record):
        return None
    return {
        "schema_version": version[0],
        "summary_metrics": summary[0],
        "compare_scalars": compare[0],
        "record_fields": record[0],
        "_anchor": (_ARTIFACT_PATH, summary[1]),
    }


def load_pin(path: Path = PIN_PATH) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def write_pin(project: ProjectContext, path: Path = PIN_PATH) -> dict:
    """Refresh the pin from the live tree (``--schema-pin-update``)."""
    current = extract_schema(project)
    if current is None:
        raise ValueError(
            "cannot extract the artifact schema surface from "
            f"{_ARTIFACT_PATH} / {_REQUEST_PATH}")
    pin = {k: v for k, v in current.items() if not k.startswith("_")}
    path.write_text(json.dumps(pin, indent=1, sort_keys=True) + "\n")
    return pin


def _diff(kind: str, pinned: list, current: list) -> str | None:
    added = sorted(set(current) - set(pinned))
    removed = sorted(set(pinned) - set(current))
    if not added and not removed:
        return None
    parts = []
    if added:
        parts.append(f"added {', '.join(added)}")
    if removed:
        parts.append(f"removed {', '.join(removed)}")
    return f"{kind}: {'; '.join(parts)}"


@register_rule
class SchemaPinRule(Rule):
    code = "REPRO501"
    name = "schema-discipline"
    description = (
        "summary metrics / compare scalars / per-request record fields "
        "changed without a SCHEMA_VERSION bump (or the pin is stale)")
    project_rule = True

    #: Overridable in tests.
    pin_path = PIN_PATH

    def check_project(self, project: ProjectContext):
        current = extract_schema(project)
        anchor_path, anchor_line = (_ARTIFACT_PATH, 1)
        if current is None:
            ctx = project.get(_ARTIFACT_PATH)
            if ctx is not None:
                yield ctx.finding(
                    self, 1,
                    "the artifact schema surface (SCHEMA_VERSION / "
                    "SUMMARY_METRICS / _COMPARE_SCALARS / "
                    "SimRequest.record) is no longer statically "
                    "extractable; update repro.lint.rules.schema")
            return
        anchor_path, anchor_line = current["_anchor"]
        ctx = project.get(anchor_path)
        pin = load_pin(self.pin_path)
        if pin is None:
            yield ctx.finding(
                self, anchor_line,
                f"schema pin {self.pin_path.name} is missing or "
                "unreadable; run `repro lint --schema-pin-update`")
            return
        if current["schema_version"] != pin.get("schema_version"):
            yield ctx.finding(
                self, anchor_line,
                f"SCHEMA_VERSION is {current['schema_version']} but the "
                f"pin records {pin.get('schema_version')}; run `repro "
                "lint --schema-pin-update` in the bumping PR")
            return
        diffs = [d for d in (
            _diff("SUMMARY_METRICS", pin.get("summary_metrics", []),
                  current["summary_metrics"]),
            _diff("compare scalars", pin.get("compare_scalars", []),
                  current["compare_scalars"]),
            _diff("record fields", pin.get("record_fields", []),
                  current["record_fields"]),
        ) if d]
        for diff in diffs:
            yield ctx.finding(
                self, anchor_line,
                f"artifact schema surface changed without a "
                f"SCHEMA_VERSION bump ({diff}); bump SCHEMA_VERSION in "
                f"{_ARTIFACT_PATH} and run `repro lint "
                "--schema-pin-update`")
