"""Grandfathered findings: the committed ``lint_baseline.json`` ratchet.

The baseline lets the gate land strict rules without a flag day: known
findings are recorded once and tolerated, anything *new* fails.  A
baseline entry matches on ``(code, path, message)`` — line numbers
drift as files are edited — and each entry absorbs exactly one
occurrence, so a second copy of a grandfathered bug still fails.
``repro lint --baseline-update`` rewrites the file from the current
findings; entries that no longer match anything are reported as stale
so the ratchet only ever tightens.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .core import Finding

__all__ = ["BASELINE_NAME", "load_baseline", "write_baseline",
           "split_baselined"]

BASELINE_NAME = "lint_baseline.json"
_FORMAT_VERSION = 1


def load_baseline(path: Path) -> list[Finding]:
    """The grandfathered findings, or [] when no baseline exists."""
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        return []
    if not isinstance(data, dict) \
            or data.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path} is not a repro-lint baseline (expected "
            f"format_version {_FORMAT_VERSION})")
    return [Finding(path=f["path"], line=int(f.get("line", 1)),
                    code=f["code"], message=f["message"],
                    rule=f.get("rule", ""))
            for f in data.get("findings", [])]


def write_baseline(path: Path, findings: list[Finding]) -> None:
    payload = {
        "format_version": _FORMAT_VERSION,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def split_baselined(findings: list[Finding], baseline: list[Finding]):
    """``(new, baselined, stale)``: findings not covered by the
    baseline, findings it absorbs, and baseline entries that matched
    nothing (candidates for --baseline-update)."""
    budget = Counter(f.signature() for f in baseline)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in sorted(findings):
        if budget.get(finding.signature(), 0) > 0:
            budget[finding.signature()] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale: list[Finding] = []
    for entry in baseline:
        if budget.get(entry.signature(), 0) > 0:
            budget[entry.signature()] -= 1
            stale.append(entry)
    return new, baselined, stale
