"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from .runner import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: one ``path:line: CODE message`` per new
    finding, then the counts line the CI log greps for."""
    lines = [f.render() for f in result.findings]
    if verbose:
        lines.extend(f"baselined: {f.render()}" for f in result.baselined)
        lines.extend(f"suppressed: {f.render()}"
                     for f in result.suppressed)
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry: {entry.code} {entry.path} "
                     f"(matches nothing; run --baseline-update)")
    lines.append(
        f"repro lint: {len(result.findings)} finding"
        f"{'s' if len(result.findings) != 1 else ''} "
        f"({len(result.baselined)} baselined, "
        f"{len(result.suppressed)} pragma-suppressed, "
        f"{result.n_files} files)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (``repro lint --json``)."""
    return json.dumps(result.to_dict(), indent=1, sort_keys=True)
