"""The unified front door for running anything in this repo.

* :class:`Scenario` — a declarative, JSON-(de)serializable description
  of one simulation cell (model, methods, dataset, cluster, load);
* :class:`Sweep` — cartesian axes over any Scenario field;
* :class:`Runner` — serial or multiprocessing execution returning
* :class:`RunArtifact` — schema-versioned structured results that can
  be saved, loaded, rendered and compared.

The ``repro.experiments`` modules and the ``repro.cli`` subcommands are
thin layers over this package.
"""

from .artifact import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    MethodRun,
    RunArtifact,
    compare_artifacts,
)
from .runner import ResolvedScenario, Runner, resolve, run_scenario, run_sweep
from .scenario import Scenario, model_dataset
from .sweep import Sweep

__all__ = [
    "Scenario",
    "Sweep",
    "Runner",
    "ResolvedScenario",
    "RunArtifact",
    "MethodRun",
    "compare_artifacts",
    "resolve",
    "run_scenario",
    "run_sweep",
    "model_dataset",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
]
