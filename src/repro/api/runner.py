"""Scenario resolution and execution.

:func:`resolve` turns a declarative :class:`~repro.api.scenario.Scenario`
into concrete simulation inputs — the §7.1 defaults exactly as the
historical ``experiments.common.run_methods`` applied them (baseline-
capacity RPS, horizon-matched trace length, fleet-derived replica
counts) — and :class:`Runner` executes scenarios through a pluggable
executor: serial in-process, or a ``multiprocessing`` pool with
``workers=N``.

Parallelism is per (scenario, method): every method of every scenario
is an independent simulation over a deterministic trace, so the
parallel runner is bit-identical to the serial one (asserted by the
test suite, and checkable via ``RunArtifact.compare``).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace

from ..methods import resolve_method
from ..model.config import ModelSpec, get_model
from ..perfmodel.calibration import Calibration, DEFAULT_CALIBRATION, calibrated
from ..sim.capacity import experiment_rps
from ..sim.engine import ClusterConfig, SimulationResult, default_cluster, \
    simulate
from ..workload.traces import TraceRequest, generate_trace
from .artifact import RunArtifact
from .scenario import (
    DEFAULT_LOAD_FACTOR,
    DEFAULT_N_REQUESTS,
    DEFAULT_SEED,
    MAX_AUTO_REQUESTS,
    Scenario,
    model_dataset,
)
from .sweep import Sweep

__all__ = ["ResolvedScenario", "Runner", "resolve", "run_scenario",
           "run_sweep"]


@dataclass(frozen=True)
class ResolvedScenario:
    """A scenario made concrete: trace plus one cluster per method."""

    scenario: Scenario
    spec: ModelSpec
    dataset: str
    max_context: int | None
    calib: Calibration
    rps: float
    n_requests: int
    trace: tuple[TraceRequest, ...]
    configs: dict[str, ClusterConfig]
    #: How many requests the model's context cap reshaped (see
    #: :class:`repro.workload.Trace`); both 0 when ``max_context`` is
    #: None.
    n_input_clipped: int = 0
    n_output_clipped: int = 0


def _resolve_calibration(scenario: Scenario) -> Calibration:
    overrides = scenario.calibration_overrides()
    return calibrated(**overrides) if overrides else DEFAULT_CALIBRATION


def resolve(scenario: Scenario) -> ResolvedScenario:
    """Apply the §7.1 defaults (see module docstring)."""
    spec = get_model(scenario.model)
    dataset_name, max_context = model_dataset(spec, scenario.dataset)
    calib = _resolve_calibration(scenario)
    load_factor = (DEFAULT_LOAD_FACTOR if scenario.load_factor is None
                   else scenario.load_factor)
    seed = DEFAULT_SEED if scenario.seed is None else scenario.seed
    rps = scenario.rps
    if rps is None:
        rps = experiment_rps(spec, scenario.prefill_gpu, dataset_name,
                             calib=calib, load_factor=load_factor)
    n_requests = scenario.n_requests
    if n_requests is None:
        # Cover a comparable wall-clock horizon for every dataset: fast
        # workloads (short prompts at tens of RPS) need more requests
        # for queues at the bottleneck stage to become visible.
        n_requests = int(max(DEFAULT_N_REQUESTS,
                             min(MAX_AUTO_REQUESTS, rps * 30)))
    n = max(10, int(n_requests * scenario.scale))
    trace = generate_trace(dataset_name, rps, n, seed=seed,
                           max_context=max_context,
                           arrival=scenario.arrival or "poisson")
    configs = {}
    for name in scenario.methods:
        config = default_cluster(
            spec, resolve_method(name), scenario.prefill_gpu, calib=calib,
            pipelining=scenario.pipelining, decode_gpu=scenario.decode_gpu,
            activation_overhead=scenario.activation_overhead,
            scheduler=scenario.scheduler,
            kvstore=scenario.kvstore,
            selection=scenario.selection,
            faults=scenario.faults,
            recovery=scenario.recovery,
            autoscaler=scenario.autoscaler,
            admission=scenario.admission,
        )
        overrides = {}
        if scenario.n_prefill_replicas is not None:
            overrides["n_prefill_replicas"] = scenario.n_prefill_replicas
        if scenario.n_decode_replicas is not None:
            overrides["n_decode_replicas"] = scenario.n_decode_replicas
        if scenario.step_mode is not None:
            overrides["step_mode"] = scenario.step_mode
        if overrides:
            config = replace(config, **overrides)
        configs[name] = config
    return ResolvedScenario(scenario=scenario, spec=spec,
                            dataset=dataset_name, max_context=max_context,
                            calib=calib, rps=rps, n_requests=n,
                            trace=tuple(trace), configs=configs,
                            n_input_clipped=trace.n_input_clipped,
                            n_output_clipped=trace.n_output_clipped)


def _timed_simulate(config: ClusterConfig, trace: list[TraceRequest],
                    ) -> tuple[SimulationResult, dict]:
    """Run one simulation and measure simulated-tokens-per-second.

    The perf record is wall-clock metadata about the run *of* the
    simulator (never serialized into artifacts, which stay byte-
    deterministic): decode tokens simulated, wall seconds, tokens/s.
    """
    start = time.perf_counter()
    result = simulate(config, trace)
    wall_s = time.perf_counter() - start
    tokens = result.generated_tokens()
    perf = {
        "step_mode": config.step_mode,
        "wall_s": wall_s,
        "simulated_tokens": tokens,
        "tokens_per_s": tokens / wall_s if wall_s > 0 else float("inf"),
    }
    return result, perf


def _trace_stats(resolved: ResolvedScenario) -> dict:
    """Per-scenario trace metadata carried on the artifact (schema v3)."""
    return {"n_input_clipped": resolved.n_input_clipped,
            "n_output_clipped": resolved.n_output_clipped}


def _run_job(job: tuple[int, Scenario]
             ) -> tuple[int, str, SimulationResult, dict, dict]:
    """Pool work unit: one single-method scenario (picklable in + out)."""
    index, scenario = job
    resolved = resolve(scenario)
    method = scenario.methods[0]
    result, perf = _timed_simulate(resolved.configs[method],
                                   list(resolved.trace))
    return index, method, result, perf, _trace_stats(resolved)


class Runner:
    """Executes scenarios and sweeps, serially or across processes.

    ``workers=1`` (the default) runs everything in-process; ``workers=N``
    fans the (scenario, method) grid over a ``multiprocessing`` pool.
    Both return :class:`RunArtifact` lists in scenario order with
    identical contents.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    # -- public API -----------------------------------------------------------

    def run(self, scenario: Scenario) -> RunArtifact:
        """Run one scenario (all its methods) and return the artifact."""
        return self.run_many([scenario])[0]

    def run_sweep(self, sweep: Sweep) -> list[RunArtifact]:
        """Expand ``sweep`` and run the whole grid."""
        return self.run_many(sweep.expand())

    def run_many(self, scenarios: list[Scenario]) -> list[RunArtifact]:
        jobs = [(i, part)
                for i, scenario in enumerate(scenarios)
                for part in scenario.split_methods()]
        if self.workers > 1 and len(jobs) > 1:
            outputs = self._run_pool(jobs)
        else:
            outputs = self._run_serial(scenarios)
        grouped: list[dict[str, SimulationResult]] = [
            {} for _ in scenarios
        ]
        perf_grouped: list[dict[str, dict]] = [{} for _ in scenarios]
        trace_stats: list[dict | None] = [None for _ in scenarios]
        for index, method, result, perf, stats in outputs:
            grouped[index][method] = result
            perf_grouped[index][method] = perf
            trace_stats[index] = stats
        artifacts = []
        for scenario, results, perfs, stats in zip(scenarios, grouped,
                                                   perf_grouped,
                                                   trace_stats):
            ordered = {m: results[m] for m in scenario.methods}
            artifact = RunArtifact.from_results(scenario, ordered,
                                                trace=stats)
            artifact.perf = {m: perfs[m] for m in scenario.methods}
            artifacts.append(artifact)
        return artifacts

    # -- executors ------------------------------------------------------------

    def _run_serial(self, scenarios: list[Scenario]):
        """In-process execution; resolves each scenario once."""
        outputs = []
        for index, scenario in enumerate(scenarios):
            resolved = resolve(scenario)
            trace = list(resolved.trace)
            stats = _trace_stats(resolved)
            for method in scenario.methods:
                result, perf = _timed_simulate(resolved.configs[method],
                                               trace)
                outputs.append((index, method, result, perf, stats))
        return outputs

    def _run_pool(self, jobs):
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context("spawn")
        workers = min(self.workers, len(jobs))
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_run_job, jobs, chunksize=1)


def run_scenario(scenario: Scenario, workers: int = 1) -> RunArtifact:
    """Convenience: run one scenario."""
    return Runner(workers=workers).run(scenario)


def run_sweep(sweep: Sweep, workers: int = 1) -> list[RunArtifact]:
    """Convenience: expand and run a sweep."""
    return Runner(workers=workers).run_sweep(sweep)
