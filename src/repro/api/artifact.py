"""Structured, versioned run artifacts.

A :class:`RunArtifact` is the durable output of running one
:class:`~repro.api.scenario.Scenario`: per-method summaries (JCT stats,
the Fig. 10 decomposition, TTFT/TBT percentiles, SLO goodput, peak
memory, swap counts, fault/recovery accounting) plus per-request
records, under a stable schema (``hack-repro/run-artifact`` v5; v1–v4
files — which predate the serving metrics, trace block, reliability
accounting and cost-efficiency metrics respectively — still load).
Artifacts can be saved to disk, loaded back,
rendered as tables and compared — the diffable, cacheable counterpart
of the pretty-printed experiment output.

The JSON is fully deterministic (no timestamps, sorted keys), so a
byte-identical artifact means an identical run — which is how the
parallel runner's equivalence with the serial one is checked.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.tables import Table
from ..sim.engine import SimulationResult
from .scenario import Scenario

__all__ = ["RunArtifact", "MethodRun", "SCHEMA_NAME", "SCHEMA_VERSION",
           "SUPPORTED_SCHEMA_VERSIONS", "compare_artifacts"]

SCHEMA_NAME = "hack-repro/run-artifact"
#: Version written by this build.  v2 added TTFT/TBT/SLO serving
#: metrics to summaries and per-request records; v3 adds the top-level
#: ``trace`` block (max-context clip counts) and — only on runs that
#: configure them — the ``kvstore``/``selection_mix`` summary sections
#: and per-request ``method_selected``/``prefix_hit_tokens``/
#: ``cache_read_s``/``cache_tier`` keys.  v4 adds per-request terminal
#: state and reliability accounting (``terminal``/``n_retries``/
#: ``wasted_compute_s``/``recovered``), includes rejected and failed
#: requests in the record list, the ``n_failed`` summary count and —
#: on runs that configure fault injection — the ``faults`` summary
#: block (availability, wasted-work fraction, goodput under faults).
#: v5 adds the cost-efficiency pair ``gpu_hours`` /
#: ``goodput_per_gpu_hour`` to every summary (static fleets backfill
#: replicas × makespan) and — on runs that configure an autoscaler or
#: admission policy — the ``elastic`` summary block (scaling-event
#: counts, mean/peak powered replicas, accrued GPU-hours, shed/degraded
#: counts).  v1–v4 files still load (their summaries simply lack the
#: newer keys and pre-v4 records only cover finished requests).
SCHEMA_VERSION = 5
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3, 4, 5)

#: Scalar summary keys surfaced by ``summary_table`` (the compact view).
#: v2 keys render as "-" for v1 artifacts that predate them.
SUMMARY_METRICS = ("avg_jct_s", "p50_jct_s", "p99_jct_s",
                   "p99_ttft_s", "p99_tbt_s", "slo_goodput_rps",
                   "goodput_per_gpu_hour",
                   "peak_memory_fraction", "n_swapped", "n_rejected",
                   "n_failed")

#: Every scalar key in a MethodRun summary — ``compare`` checks those
#: present on both sides, plus the per-bucket decomposition and
#: per-request JCTs.
_COMPARE_SCALARS = ("n_requests", "avg_jct_s", "p50_jct_s", "p95_jct_s",
                    "p99_jct_s", "max_jct_s", "peak_memory_fraction",
                    "n_swapped", "n_rejected",
                    # schema v2 serving metrics
                    "mean_ttft_s", "p50_ttft_s", "p95_ttft_s", "p99_ttft_s",
                    "mean_tbt_s", "p50_tbt_s", "p95_tbt_s", "p99_tbt_s",
                    "mean_normalized_latency_s", "slo_ttft_s", "slo_tbt_s",
                    "slo_attainment", "slo_goodput_rps",
                    # schema v4 reliability count
                    "n_failed",
                    # schema v5 cost-efficiency metrics
                    "gpu_hours", "goodput_per_gpu_hour")


@dataclass
class MethodRun:
    """One method's results inside an artifact."""

    method: str
    summary: dict
    requests: list[dict]

    @classmethod
    def from_result(cls, method: str, result: SimulationResult) -> "MethodRun":
        return cls(method=method, summary=result.summary(),
                   requests=result.to_records())

    def to_dict(self) -> dict:
        return {"method": self.method, "summary": self.summary,
                "requests": self.requests}

    @classmethod
    def from_dict(cls, data: dict) -> "MethodRun":
        return cls(method=data["method"], summary=data["summary"],
                   requests=data["requests"])


@dataclass
class RunArtifact:
    """Everything one scenario run produced (see module docstring)."""

    scenario: Scenario
    methods: dict[str, MethodRun]
    #: Live simulation objects, present only on freshly-run artifacts
    #: (never serialized; ``None`` after a round-trip through disk).
    results: dict[str, SimulationResult] | None = field(
        default=None, repr=False, compare=False)
    #: Per-method simulator-throughput record set by the Runner
    #: (``step_mode``/``wall_s``/``simulated_tokens``/``tokens_per_s``).
    #: Wall-clock metadata about the machine that ran the simulation —
    #: never serialized, so artifact JSON stays byte-deterministic.
    perf: dict[str, dict] | None = field(
        default=None, repr=False, compare=False)
    #: Trace metadata (schema v3): ``n_input_clipped``/
    #: ``n_output_clipped`` — how many requests the model's context cap
    #: reshaped.  ``None`` on artifacts predating v3.
    trace: dict | None = None

    @classmethod
    def from_results(cls, scenario: Scenario,
                     results: dict[str, SimulationResult],
                     trace: dict | None = None) -> "RunArtifact":
        runs = {m: MethodRun.from_result(m, r) for m, r in results.items()}
        return cls(scenario=scenario, methods=runs, results=dict(results),
                   trace=trace)

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "schema": SCHEMA_NAME,
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario.to_dict(),
            "methods": {m: run.to_dict() for m, run in self.methods.items()},
        }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        if data.get("schema") != SCHEMA_NAME:
            raise ValueError(
                f"not a {SCHEMA_NAME} artifact (schema={data.get('schema')!r})"
            )
        version = data.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported artifact schema_version {version!r}; "
                f"this build reads versions "
                f"{', '.join(map(str, SUPPORTED_SCHEMA_VERSIONS))}"
            )
        missing = {"scenario", "methods"} - set(data)
        if missing:
            raise ValueError(
                f"artifact is missing required key(s) {sorted(missing)}"
            )
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            methods={m: MethodRun.from_dict(d)
                     for m, d in data["methods"].items()},
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunArtifact":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write to ``path`` (a ``.json`` file, or a directory to get a
        deterministic per-scenario filename).  Returns the file path."""
        path = Path(path)
        if path.suffix != ".json":
            path.mkdir(parents=True, exist_ok=True)
            path = path / f"{self.scenario.slug()}.json"
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunArtifact":
        return cls.from_json(Path(path).read_text())

    # -- views ----------------------------------------------------------------

    def summary_table(self, title: str | None = None) -> Table:
        """Per-method scalar summary as a renderable table."""
        if title is None:
            title = f"Run summary: {self.scenario.describe()}"
            if self.trace and (self.trace.get("n_input_clipped")
                               or self.trace.get("n_output_clipped")):
                title += (
                    f" [clipped: in={self.trace['n_input_clipped']}"
                    f" out={self.trace['n_output_clipped']}]"
                )
        buckets = next(iter(self.methods.values())) \
            .summary["mean_decomposition_s"].keys() if self.methods else ()
        table = Table(title, ["method", *SUMMARY_METRICS, *buckets])
        for method, run in self.methods.items():
            decomp = run.summary["mean_decomposition_s"]
            table.add_row(method,
                          *(run.summary.get(k, "-")
                            for k in SUMMARY_METRICS),
                          *(decomp[b] for b in buckets))
        return table

    def compare(self, other: "RunArtifact", rtol: float = 1e-9) -> dict:
        """Per-method metric diffs against ``other`` (see
        :func:`compare_artifacts`)."""
        return compare_artifacts(self, other, rtol=rtol)


def _rel_diff(a: float, b: float) -> float:
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale else 0.0


def compare_artifacts(a: RunArtifact, b: RunArtifact,
                      rtol: float = 1e-9) -> dict:
    """Structured diff of two artifacts.

    Checks every summary scalar, every Fig.-10 decomposition bucket,
    the per-request JCTs, the trace clip counts and — when both sides
    carry them — the KV-store hit metrics and selection mix, not just
    headline numbers — so a simulator change that re-attributes time
    between buckets while preserving totals still shows up.  Returns
    ``{"equal": bool, "scenario_equal": bool, "trace": {...}, "methods":
    {name: {metric: {"a":…, "b":…, "rel_diff":…}}}}`` where only
    metrics whose relative difference exceeds ``rtol`` (and methods
    present in one side only) are listed.
    """
    diffs: dict[str, dict] = {}
    for method in sorted(set(a.methods) | set(b.methods)):
        if method not in a.methods or method not in b.methods:
            diffs[method] = {"missing_from": "a" if method not in a.methods
                             else "b"}
            continue
        sa, sb = a.methods[method].summary, b.methods[method].summary
        method_diff = {}

        def check(metric: str, va, vb) -> None:
            rel = _rel_diff(va, vb)
            if rel > rtol:
                method_diff[metric] = {"a": va, "b": vb, "rel_diff": rel}

        for metric in _COMPARE_SCALARS:
            if metric in sa and metric in sb:   # v2 keys absent in v1
                check(metric, sa[metric], sb[metric])
        ka, kb = sa.get("kvstore"), sb.get("kvstore")
        if ka is not None and kb is not None:
            for metric in ("hit_rate", "prefill_tokens_skipped",
                           "lookups", "hits", "dropped", "expired"):
                check(f"kvstore.{metric}", ka[metric], kb[metric])
        elif (ka is None) != (kb is None):
            method_diff["kvstore"] = {"a": ka is not None,
                                      "b": kb is not None,
                                      "rel_diff": 1.0}
        ma, mb = sa.get("selection_mix"), sb.get("selection_mix")
        if ma != mb:
            method_diff["selection_mix"] = {"a": ma, "b": mb,
                                            "rel_diff": 1.0}
        fa, fb = sa.get("faults"), sb.get("faults")
        if fa is not None and fb is not None:
            for metric in ("availability", "n_failed", "n_recovered",
                           "n_retries", "wasted_compute_s",
                           "wasted_work_fraction",
                           "goodput_under_faults_rps"):
                check(f"faults.{metric}", fa[metric], fb[metric])
        elif (fa is None) != (fb is None):
            method_diff["faults"] = {"a": fa is not None,
                                     "b": fb is not None,
                                     "rel_diff": 1.0}
        ea, eb = sa.get("elastic"), sb.get("elastic")
        if ea is not None and eb is not None:
            for metric in ("n_scale_ups", "n_scale_downs",
                           "scaling_events", "mean_prefill_replicas",
                           "peak_prefill_replicas",
                           "mean_decode_replicas",
                           "peak_decode_replicas", "mean_utilization",
                           "gpu_hours", "goodput_per_gpu_hour",
                           "n_shed", "n_degraded"):
                check(f"elastic.{metric}", ea[metric], eb[metric])
        elif (ea is None) != (eb is None):
            method_diff["elastic"] = {"a": ea is not None,
                                      "b": eb is not None,
                                      "rel_diff": 1.0}
        da, db = sa["mean_decomposition_s"], sb["mean_decomposition_s"]
        for bucket in sorted(set(da) | set(db)):
            check(f"mean_decomposition_s.{bucket}",
                  da.get(bucket, 0.0), db.get(bucket, 0.0))
        ra, rb = a.methods[method].requests, b.methods[method].requests
        if len(ra) != len(rb):
            method_diff["requests"] = {"a": len(ra), "b": len(rb),
                                       "rel_diff": 1.0}
        else:
            # v4 records cover rejected/failed requests too, which
            # carry no jct_s — a terminal-state flip counts as a full
            # diff for that request.
            def record_diff(x: dict, y: dict) -> float:
                if x.get("terminal", "finished") != \
                        y.get("terminal", "finished"):
                    return 1.0
                if "jct_s" not in x or "jct_s" not in y:
                    return 0.0 if ("jct_s" in x) == ("jct_s" in y) else 1.0
                return _rel_diff(x["jct_s"], y["jct_s"])

            worst = max((record_diff(x, y)
                         for x, y in zip(ra, rb)), default=0.0)
            if worst > rtol:
                method_diff["requests.jct_s"] = {
                    "a": "per-request", "b": "per-request",
                    "rel_diff": worst}
        if method_diff:
            diffs[method] = method_diff
    trace_diff: dict = {}
    ta, tb = a.trace, b.trace
    if ta is not None and tb is not None:
        for key in ("n_input_clipped", "n_output_clipped"):
            va, vb = ta.get(key, 0), tb.get(key, 0)
            if va != vb:
                trace_diff[key] = {"a": va, "b": vb,
                                   "rel_diff": _rel_diff(va, vb)}
    scenario_equal = a.scenario == b.scenario
    return {"equal": scenario_equal and not diffs and not trace_diff,
            "scenario_equal": scenario_equal,
            "trace": trace_diff,
            "methods": diffs}
