"""Declarative run descriptions: the :class:`Scenario`.

A scenario is the single front door for running anything in this repo:
it names a (model, methods, dataset, cluster, load) cell declaratively
and is JSON-(de)serializable, so runs can be saved, diffed, swept over
and dispatched to worker processes.  Resolution of a scenario into a
concrete trace + cluster configs lives in :mod:`repro.api.runner`; this
module is pure description.

Field semantics follow the paper's §7.1 conventions (and are identical
to the historical ``experiments.common.run_methods`` keywords):

* ``rps=None`` derives the arrival rate from the *baseline* system's
  capacity at ``load_factor`` (default 1.05 — just past saturation);
* ``n_requests=None`` sizes the trace to cover a comparable wall-clock
  horizon for every dataset; ``scale`` multiplies it for quick runs;
* ``n_prefill_replicas``/``n_decode_replicas`` override the Table 2/3
  fleet-derived replica counts (used by the Fig. 14 scalability sweep);
* ``calibration`` holds overrides applied on top of
  :data:`repro.perfmodel.calibration.DEFAULT_CALIBRATION`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, field, replace

from ..kvstore.selection import (
    SelectionSpec,
    canonical_selection,
    has_selection_policy,
)
from ..kvstore.spec import (
    KVStoreSpec,
    canonical_kvstore,
    has_kvstore_families,
)
from ..methods import (
    MethodSpec,
    canonical_method,
    has_registered_family,
    split_method_list,
)
from ..model.config import ModelSpec
from ..sim.elastic import (
    AdmissionSpec,
    AutoscalerSpec,
    canonical_admission,
    canonical_autoscaler,
    has_admission_policy,
    has_autoscaler_policy,
)
from ..sim.faults import (
    FaultPlan,
    FaultSpec,
    canonical_faults,
    has_fault_families,
)
from ..sim.recovery import (
    RecoverySpec,
    canonical_recovery,
    has_recovery_policy,
)
from ..sim.scheduling import (
    SchedulerSpec,
    canonical_scheduler,
    has_scheduler_policies,
)
from ..workload.arrivals import (
    ArrivalSpec,
    canonical_arrival,
    has_arrival_process,
)
from ..workload.datasets import get_dataset

__all__ = ["Scenario", "model_dataset", "DEFAULT_LOAD_FACTOR", "DEFAULT_SEED",
           "DEFAULT_N_REQUESTS", "MAX_AUTO_REQUESTS"]

#: §7.1 operating point: the cluster is loaded slightly past the
#: baseline's bottleneck capacity, the regime where the paper's JCT
#: gaps appear (the baseline queues; compressed methods keep headroom).
DEFAULT_LOAD_FACTOR = 1.05
DEFAULT_SEED = 1
DEFAULT_N_REQUESTS = 120
MAX_AUTO_REQUESTS = 600


def _canonical_or_verbatim(method) -> str:
    """Canonicalize a method reference, keeping *unknown-family*
    strings verbatim.

    A Scenario is pure description: artifacts referencing a method
    family that is not registered in the current process (a custom
    family from another script) must still load, render and diff — only
    *running* them requires resolution, and the runner raises the same
    "unknown method" error at that point.  Everything else validates
    here: a malformed spec of a *registered* family (typo'd parameter,
    bad value) is a constructor error, and non-string references
    (MethodSpec objects, dicts) cannot exist without their family.
    """
    if isinstance(method, str) and not has_registered_family(method):
        return method.strip()
    return canonical_method(method)


def model_dataset(model: ModelSpec, dataset_name: str) -> tuple[str, int | None]:
    """Resolve the paper's model↔dataset pairing quirks.

    Falcon-180B cannot process Cocktail (2K context); the paper
    substitutes arXiv capped to Falcon's window ("F-arXiv").  Returns
    ``(dataset_name, max_context)``.
    """
    ds = get_dataset(dataset_name)
    if ds.input_len.minimum >= model.max_context:
        return "arxiv", model.max_context
    if ds.input_len.maximum > model.max_context:
        return dataset_name, model.max_context
    return dataset_name, None


@dataclass(frozen=True)
class Scenario:
    """One declarative simulation cell (see module docstring)."""

    model: str = "L"
    #: Canonical method strings: legacy registry names ("hack_pi64") or
    #: MethodSpec grammar ("hack?pi=128,bits=4").  MethodSpec objects
    #: and flat spec dicts are accepted and canonicalized.
    methods: tuple[str, ...] = ("baseline",)
    dataset: str = "cocktail"
    prefill_gpu: str = "A10G"
    decode_gpu: str = "A100"
    n_requests: int | None = None
    load_factor: float | None = None
    rps: float | None = None
    seed: int | None = None
    scale: float = 1.0
    pipelining: bool = False
    n_prefill_replicas: int | None = None
    n_decode_replicas: int | None = None
    activation_overhead: float | None = None
    #: Decode stepping: ``"span"`` (fast-forward, the
    #: :class:`~repro.sim.engine.ClusterConfig` default) or ``"token"``
    #: (legacy per-token events, for differential testing); ``None``
    #: keeps the cluster default.
    step_mode: str | None = None
    #: Arrival process: a grammar string (``"poisson"``,
    #: ``"mmpp?burst=4.0,duty=0.1"``, …) or an
    #: :class:`~repro.workload.arrivals.ArrivalSpec`; ``None`` keeps
    #: the historical Poisson default (and serializes/slugs exactly as
    #: before the field existed).
    arrival: str | None = None
    #: Scheduling policy pair: a grammar string naming a dispatch
    #: and/or placement policy (``"round_robin"``, ``"best_fit"``,
    #: ``"random?seed=7+no_swap"``) or a
    #: :class:`~repro.sim.scheduling.SchedulerSpec`; ``None`` keeps the
    #: paper's §7.1 pair (and serializes/slugs exactly as before the
    #: field existed).
    scheduler: str | None = None
    #: Tiered KV store for prefix caching: a grammar string
    #: (``"tiered?dram_gb=8.0+lfu"``, or a bare eviction name like
    #: ``"lfu"``) or a :class:`~repro.kvstore.KVStoreSpec`; ``None``
    #: keeps the historical no-store path (and serializes/slugs exactly
    #: as before the field existed).
    kvstore: str | None = None
    #: Per-request compression-selection policy: a grammar string
    #: (``"slo_tier"``, ``"congestion?hi=0.8,lo=0.5"``) or a
    #: :class:`~repro.kvstore.SelectionSpec`; ``None`` keeps one method
    #: per cluster (and serializes/slugs exactly as before).
    selection: str | None = None
    #: Fault-injection plan: a grammar string
    #: (``"replica_crash?mttf=600"``, ``+``-composed) or a
    #: :class:`~repro.sim.faults.FaultPlan`; ``None`` injects nothing
    #: (and serializes/slugs exactly as before the field existed).
    faults: str | None = None
    #: Recovery policy for fault-interrupted requests: a grammar string
    #: (``"retry?max=5"``, ``"none"``, ``"migrate"``) or a
    #: :class:`~repro.sim.recovery.RecoverySpec`; ``None`` means the
    #: default ``retry`` policy when faults are set.
    recovery: str | None = None
    #: Autoscaler policy: a grammar string (``"static"``,
    #: ``"reactive?queue_hi=6.0"``, ``"schedule?plan=0:1.0|450:0.5"``)
    #: or an :class:`~repro.sim.elastic.AutoscalerSpec`; ``None`` keeps
    #: the historical fixed fleet (and serializes/slugs exactly as
    #: before the field existed).
    autoscaler: str | None = None
    #: Admission policy: a grammar string (``"accept_all"``,
    #: ``"shed?queue_max=48.0"``, ``"degrade?tier=1.0"``) or an
    #: :class:`~repro.sim.elastic.AdmissionSpec`; ``None`` accepts
    #: every arrival unchanged.
    admission: str | None = None
    #: Overrides on DEFAULT_CALIBRATION, e.g. {"net_efficiency": 0.25}.
    calibration: tuple[tuple[str, float], ...] | None = None
    #: Optional human label; never affects resolution, equality or the
    #: slug (two runs of the same cell compare equal however labelled).
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # Normalize list-ish inputs so scenarios hash/compare cleanly.
        # Methods may be legacy names, MethodSpec grammar strings
        # ("hack?pi=128,bits=4"), MethodSpec objects or flat spec dicts;
        # everything canonicalizes to strings (legacy names untouched,
        # so pre-spec scenarios serialize and slug exactly as before).
        methods = self.methods
        if isinstance(methods, str):
            methods = split_method_list(methods)
        elif isinstance(methods, (MethodSpec, dict)):
            methods = (methods,)
        object.__setattr__(self, "methods",
                           tuple(_canonical_or_verbatim(m) for m in methods))
        if not self.methods:
            raise ValueError("scenario needs at least one method")
        if self.calibration is not None:
            calib = self.calibration
            if isinstance(calib, dict):
                calib = tuple(sorted(calib.items()))
            object.__setattr__(self, "calibration", tuple(
                (str(k), float(v)) for k, v in calib
            ))
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.step_mode not in (None, "span", "token"):
            raise ValueError(
                f"step_mode must be 'span', 'token' or None, got "
                f"{self.step_mode!r}"
            )
        if self.arrival is not None:
            # Same tolerance as methods: an unknown-family string stays
            # verbatim so artifacts referencing a custom arrival process
            # still load; running them raises at resolution.
            arrival = self.arrival
            if isinstance(arrival, ArrivalSpec) \
                    or not isinstance(arrival, str) \
                    or has_arrival_process(arrival):
                arrival = canonical_arrival(arrival)
            else:
                arrival = arrival.strip()
            object.__setattr__(self, "arrival", arrival)
        if self.scheduler is not None:
            # Same tolerance again: keep unknown-policy strings
            # verbatim so artifacts referencing a custom policy still
            # load; running them raises at resolution.
            scheduler = self.scheduler
            if isinstance(scheduler, SchedulerSpec) \
                    or not isinstance(scheduler, str) \
                    or has_scheduler_policies(scheduler):
                scheduler = canonical_scheduler(scheduler)
            else:
                scheduler = scheduler.strip()
            object.__setattr__(self, "scheduler", scheduler)
        if self.kvstore is not None:
            # Unknown-family tolerance, as for methods/arrival/scheduler.
            kvstore = self.kvstore
            if isinstance(kvstore, KVStoreSpec) \
                    or not isinstance(kvstore, str) \
                    or has_kvstore_families(kvstore):
                kvstore = canonical_kvstore(kvstore)
            else:
                kvstore = kvstore.strip()
            object.__setattr__(self, "kvstore", kvstore)
        if self.selection is not None:
            selection = self.selection
            if isinstance(selection, SelectionSpec) \
                    or not isinstance(selection, str) \
                    or has_selection_policy(selection):
                selection = canonical_selection(selection)
            else:
                selection = selection.strip()
            object.__setattr__(self, "selection", selection)
        if self.faults is not None:
            faults = self.faults
            if isinstance(faults, (FaultPlan, FaultSpec)) \
                    or not isinstance(faults, str) \
                    or has_fault_families(faults):
                faults = canonical_faults(faults)
            else:
                faults = faults.strip()
            object.__setattr__(self, "faults", faults)
        if self.recovery is not None:
            recovery = self.recovery
            if isinstance(recovery, RecoverySpec) \
                    or not isinstance(recovery, str) \
                    or has_recovery_policy(recovery):
                recovery = canonical_recovery(recovery)
            else:
                recovery = recovery.strip()
            object.__setattr__(self, "recovery", recovery)
        if self.autoscaler is not None:
            autoscaler = self.autoscaler
            if isinstance(autoscaler, AutoscalerSpec) \
                    or not isinstance(autoscaler, str) \
                    or has_autoscaler_policy(autoscaler):
                autoscaler = canonical_autoscaler(autoscaler)
            else:
                autoscaler = autoscaler.strip()
            object.__setattr__(self, "autoscaler", autoscaler)
        if self.admission is not None:
            admission = self.admission
            if isinstance(admission, AdmissionSpec) \
                    or not isinstance(admission, str) \
                    or has_admission_policy(admission):
                admission = canonical_admission(admission)
            else:
                admission = admission.strip()
            object.__setattr__(self, "admission", admission)

    # -- derived views --------------------------------------------------------

    def calibration_overrides(self) -> dict[str, float]:
        return dict(self.calibration) if self.calibration else {}

    def replace(self, **changes) -> "Scenario":
        """A copy with selected fields changed."""
        return replace(self, **changes)

    def split_methods(self) -> list["Scenario"]:
        """One single-method scenario per method (the parallel work unit).

        Resolution depends only on (model, dataset, cluster, load) —
        never on the method set — so the split scenarios replay the
        exact same trace and their merged results equal a joint run.
        """
        return [self.replace(methods=(m,)) for m in self.methods]

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready dict (calibration as a plain mapping).

        ``step_mode``, ``arrival``, ``scheduler``, ``kvstore``,
        ``selection``, ``faults``, ``recovery``, ``autoscaler`` and
        ``admission`` are emitted only
        when set: a defaulted scenario serializes exactly as it did
        before the fields existed, so schema readers predating them
        still load such artifacts (and slugs of pre-existing scenarios
        are unchanged).
        """
        out = dataclasses.asdict(self)
        out["methods"] = list(self.methods)
        out["calibration"] = (dict(self.calibration)
                              if self.calibration else None)
        for optional in ("step_mode", "arrival", "scheduler", "kvstore",
                         "selection", "faults", "recovery", "autoscaler",
                         "admission"):
            if out[optional] is None:
                del out[optional]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(data)
        if isinstance(kwargs.get("methods"), list):
            kwargs["methods"] = tuple(kwargs["methods"])
        return cls(**kwargs)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def slug(self) -> str:
        """Deterministic filesystem-friendly identifier.

        Derived from the resolution-relevant fields only — the ``name``
        label never changes the slug.
        """
        payload = self.to_dict()
        del payload["name"]
        canonical = json.dumps(payload, sort_keys=True)
        digest = hashlib.md5(canonical.encode()).hexdigest()[:8]
        parts = [self.model, self.dataset, self.prefill_gpu,
                 "+".join(self.methods)]
        # Spec grammar characters ("?", ",") are not filesystem-safe;
        # legacy names contain only allowed characters, so their slugs
        # are byte-identical to the pre-spec scheme.
        base = "-".join(re.sub(r"[^a-z0-9_+=.-]", "_", p.lower())
                        for p in parts)
        return f"{base}-{digest}"

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        bits = [f"model={self.model}", f"dataset={self.dataset}",
                f"prefill={self.prefill_gpu}", f"decode={self.decode_gpu}",
                f"methods={','.join(self.methods)}"]
        for fname in ("rps", "load_factor", "n_requests", "seed", "scale",
                      "n_prefill_replicas", "n_decode_replicas",
                      "activation_overhead", "step_mode", "arrival",
                      "scheduler", "kvstore", "selection", "faults",
                      "recovery", "autoscaler", "admission"):
            value = getattr(self, fname)
            if value is not None and (fname != "scale" or value != 1.0):
                bits.append(f"{fname}={value}")
        if self.calibration:
            bits.append("calib=" + ",".join(
                f"{k}:{format(v, 'g')}" for k, v in self.calibration))
        if self.pipelining:
            bits.append("pipelining")
        return " ".join(bits)
