"""Cartesian scenario grids: the :class:`Sweep`.

A sweep is a base :class:`~repro.api.scenario.Scenario` plus named axes
— any Scenario field mapped to a list of values — expanded row-major
(later axes vary fastest) into the full cartesian grid.  Like the
Scenario itself it is JSON-(de)serializable, so whole evaluation grids
(the FlowKV/KVServe-style model × method × load matrices) can live in
version control and be replayed bit-identically.

Beyond Scenario fields, axes named ``method.<param>`` sweep a
**method-spec parameter** (see :mod:`repro.methods.spec`): each value
is applied to every method of the scenario whose family defines the
parameter (others pass through unchanged, so a ``baseline`` comparator
can ride along a ``method.partition_size`` sweep)::

    Sweep(Scenario(methods=("baseline", "hack")),
          axes={"method.partition_size": [32, 64, 128, 256]})

expands to four scenarios whose methods are ``("baseline",
"hack?pi=32")`` … ``("baseline", "hack?pi=256")`` — one artifact per
spec, exactly like any other axis.

Axes named ``kvstore.<param>`` sweep a **KV-store family parameter**
(see :mod:`repro.kvstore`) on the base scenario's store — or on the
default ``tiered`` store when the base has none (sweeping
``kvstore.dram_gb`` implies a store exists)::

    Sweep(Scenario(kvstore="tiered+lfu"),
          axes={"kvstore.dram_gb": [4.0, 16.0, 64.0]})

The ``kvstore`` and ``selection`` fields themselves are ordinary
Scenario-field axes (``axes={"selection": ["slo_tier", "congestion"]}``).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, replace

from ..kvstore.spec import KVStoreSpec, kvstore_spec
from ..methods import apply_method_params
from .scenario import Scenario

__all__ = ["Sweep", "METHOD_AXIS_PREFIX", "KVSTORE_AXIS_PREFIX"]

_SCENARIO_FIELDS = {f.name for f in dataclasses.fields(Scenario)}

#: Axis-name prefix selecting a method-spec parameter instead of a
#: Scenario field.
METHOD_AXIS_PREFIX = "method."

#: Axis-name prefix selecting a KV-store family parameter (e.g.
#: ``kvstore.dram_gb``); applied via
#: :meth:`repro.kvstore.KVStoreSpec.with_params`.
KVSTORE_AXIS_PREFIX = "kvstore."


def _freeze(value):
    """Lists inside axis values become tuples (e.g. a methods axis)."""
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass(frozen=True)
class Sweep:
    """A cartesian grid of scenarios over ``base``."""

    base: Scenario
    #: Ordered (field, values) pairs; dicts are accepted and frozen.
    axes: tuple[tuple[str, tuple], ...] = ()

    def __post_init__(self) -> None:
        axes = self.axes
        if isinstance(axes, dict):
            axes = tuple(axes.items())
        frozen = []
        for name, values in axes:
            if name.startswith(METHOD_AXIS_PREFIX):
                if not name[len(METHOD_AXIS_PREFIX):]:
                    raise ValueError(
                        f"method axis {name!r} names no parameter; use "
                        "method.<param>, e.g. method.partition_size"
                    )
            elif name.startswith(KVSTORE_AXIS_PREFIX):
                if not name[len(KVSTORE_AXIS_PREFIX):]:
                    raise ValueError(
                        f"kvstore axis {name!r} names no parameter; use "
                        "kvstore.<param>, e.g. kvstore.dram_gb"
                    )
            elif name not in _SCENARIO_FIELDS or name == "name":
                raise ValueError(
                    f"{name!r} is not a sweepable Scenario field "
                    f"(method-spec parameters sweep as "
                    f"{METHOD_AXIS_PREFIX}<param>, KV-store parameters "
                    f"as {KVSTORE_AXIS_PREFIX}<param>)"
                )
            values = tuple(_freeze(v) for v in values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            frozen.append((name, values))
        object.__setattr__(self, "axes", tuple(frozen))

    def __len__(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def override(self, **changes) -> "Sweep":
        """A sweep with base-scenario fields changed (e.g. ``scale``)."""
        return replace(self, base=self.base.replace(**changes))

    def expand(self) -> list[Scenario]:
        """The full grid, row-major (later axes vary fastest)."""
        if not self.axes:
            return [self.base]
        names = [name for name, _ in self.axes]
        grids = [values for _, values in self.axes]
        out = []
        #: Changed parameters that applied in no cell so far.  Checked
        #: across the whole expansion (not per cell) so a comparator
        #: rides along both inside one method set and as its own
        #: `methods`-axis cell — but a typo'd parameter, inert
        #: everywhere, still errors instead of expanding to duplicate
        #: scenarios with colliding slugs.
        inert: set | None = None
        for combo in itertools.product(*grids):
            changes = dict(zip(names, combo))
            label = " ".join(f"{n}={_label(v)}" for n, v in changes.items())
            spec_changes = {
                n[len(METHOD_AXIS_PREFIX):]: changes.pop(n)
                for n in [n for n in changes
                          if n.startswith(METHOD_AXIS_PREFIX)]
            }
            kv_changes = {
                n[len(KVSTORE_AXIS_PREFIX):]: changes.pop(n)
                for n in [n for n in changes
                          if n.startswith(KVSTORE_AXIS_PREFIX)]
            }
            if kv_changes:
                # Unknown parameters raise inside with_params — a typo'd
                # kvstore axis fails the whole expansion, like a typo'd
                # Scenario field.
                spec = kvstore_spec(self.base.kvstore) \
                    if self.base.kvstore is not None else KVStoreSpec()
                changes["kvstore"] = spec.with_params(
                    **kv_changes).canonical()
            scenario = self.base.replace(name=label, **changes)
            if spec_changes:
                methods, applied = _apply_spec_changes(scenario.methods,
                                                       spec_changes)
                scenario = scenario.replace(methods=methods)
                missing = set(spec_changes) - applied
                inert = missing if inert is None else inert & missing
            out.append(scenario)
        if inert:
            raise ValueError(
                f"method axis parameter(s) {sorted(inert)} apply to none "
                "of the swept methods"
            )
        return out

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Sweep":
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise ValueError(f"unknown sweep field(s) {sorted(unknown)}")
        return cls(base=Scenario.from_dict(data.get("base", {})),
                   axes=tuple(data.get("axes", {}).items()))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        return cls.from_dict(json.loads(text))


def _apply_spec_changes(methods: tuple[str, ...], changes: dict
                        ) -> tuple[tuple[str, ...], set]:
    """Apply method-parameter changes to every applicable method.

    Returns the rewritten methods plus the set of changed parameters
    some method's family defines; :meth:`Sweep.expand` raises when a
    parameter is inert across the *entire* grid."""
    out, applied = [], set()
    for method in methods:
        new, did = apply_method_params(method, changes)
        out.append(new)
        applied |= did
    return tuple(out), applied


def _label(value) -> str:
    if isinstance(value, tuple):
        return ",".join(str(v) for v in value)
    return str(value)
