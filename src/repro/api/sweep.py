"""Cartesian scenario grids: the :class:`Sweep`.

A sweep is a base :class:`~repro.api.scenario.Scenario` plus named axes
— any Scenario field mapped to a list of values — expanded row-major
(later axes vary fastest) into the full cartesian grid.  Like the
Scenario itself it is JSON-(de)serializable, so whole evaluation grids
(the FlowKV/KVServe-style model × method × load matrices) can live in
version control and be replayed bit-identically.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, replace

from .scenario import Scenario

__all__ = ["Sweep"]

_SCENARIO_FIELDS = {f.name for f in dataclasses.fields(Scenario)}


def _freeze(value):
    """Lists inside axis values become tuples (e.g. a methods axis)."""
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass(frozen=True)
class Sweep:
    """A cartesian grid of scenarios over ``base``."""

    base: Scenario
    #: Ordered (field, values) pairs; dicts are accepted and frozen.
    axes: tuple[tuple[str, tuple], ...] = ()

    def __post_init__(self) -> None:
        axes = self.axes
        if isinstance(axes, dict):
            axes = tuple(axes.items())
        frozen = []
        for name, values in axes:
            if name not in _SCENARIO_FIELDS or name == "name":
                raise ValueError(f"{name!r} is not a sweepable Scenario field")
            values = tuple(_freeze(v) for v in values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            frozen.append((name, values))
        object.__setattr__(self, "axes", tuple(frozen))

    def __len__(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def override(self, **changes) -> "Sweep":
        """A sweep with base-scenario fields changed (e.g. ``scale``)."""
        return replace(self, base=self.base.replace(**changes))

    def expand(self) -> list[Scenario]:
        """The full grid, row-major (later axes vary fastest)."""
        if not self.axes:
            return [self.base]
        names = [name for name, _ in self.axes]
        grids = [values for _, values in self.axes]
        out = []
        for combo in itertools.product(*grids):
            changes = dict(zip(names, combo))
            label = " ".join(f"{n}={_label(v)}" for n, v in changes.items())
            out.append(self.base.replace(name=label, **changes))
        return out

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Sweep":
        unknown = set(data) - {"base", "axes"}
        if unknown:
            raise ValueError(f"unknown sweep field(s) {sorted(unknown)}")
        return cls(base=Scenario.from_dict(data.get("base", {})),
                   axes=tuple(data.get("axes", {}).items()))

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        return cls.from_dict(json.loads(text))


def _label(value) -> str:
    if isinstance(value, tuple):
        return ",".join(str(v) for v in value)
    return str(value)
