"""Fault injection, recovery and graceful degradation in five minutes.

Walks the reliability side of the API:

1. a healthy run vs a crash-prone fleet — availability, retries and
   wasted compute from the ``faults`` summary block;
2. recovery policies compared on flaky KV transfers: fail-fast
   (``none``), exponential backoff (``retry``) and instant
   re-dispatch (``migrate``);
3. the tiered KV store as a recovery accelerator — a crash victim's
   cached prefix survives, so the retry reads the store instead of
   re-prefilling the whole conversation;
4. graceful degradation: congestion-triggered compression escalation
   while most of the decode fleet is down;
5. registering a *custom* fault family — the registry is open,
   exactly like method, arrival, scheduler and eviction families.

Every fault timeline is deterministic (seeded from the plan's
canonical string), so each section prints the same numbers on every
run.

Run:  PYTHONPATH=src python examples/fault_injection.py
"""

from repro.api import Runner, Scenario
from repro.sim import FaultFamily, FaultParam, register_fault

#: Multi-turn conversations give the KV store a prefix worth caching.
SESSIONS = "sessions?turns=4.0,think_time=10.0,prefix_growth=0.3"
N_REQUESTS = 40   # keep the demo fast; drop for paper-fidelity traces


def section(title):
    print(f"\n=== {title} ===")


def reliability(artifact, method="hack"):
    """The ``faults`` summary block (None on unfaulted runs)."""
    return artifact.methods[method].summary.get("faults")


def main():
    runner = Runner()
    base = Scenario(methods=("hack",), n_requests=N_REQUESTS, seed=3)

    section("1. Healthy fleet vs crash-prone fleet")
    healthy = runner.run(base)
    crashed = runner.run(base.replace(
        faults="replica_crash?mttf=20,mttr=5",
        recovery="retry?max=3,base_s=0.5"))
    s = healthy.methods["hack"].summary
    print(f"  healthy    avg JCT {s['avg_jct_s']:6.2f}s  "
          f"(no faults block: {reliability(healthy) is None})")
    s, rel = crashed.methods["hack"].summary, reliability(crashed)
    print(f"  crashing   avg JCT {s['avg_jct_s']:6.2f}s  "
          f"availability {rel['availability']:.2f}  "
          f"recovered {rel['n_recovered']}  retries {rel['n_retries']}  "
          f"wasted {rel['wasted_compute_s']:.1f}s "
          f"({rel['wasted_work_fraction']:.0%} of compute)")

    section("2. Recovery policies on flaky KV transfers")
    flap = base.replace(faults="transfer_flap?p_fail=0.35")
    print(f"  {'policy':28s} {'avail':>6s} {'failed':>6s} "
          f"{'recovered':>9s} {'goodput rps':>11s}")
    for recovery in ("none", "retry?max=3,base_s=0.5,cap_s=4",
                     "migrate"):
        art = runner.run(flap.replace(recovery=recovery))
        rel = reliability(art)
        print(f"  {recovery:28s} {rel['availability']:6.2f} "
              f"{rel['n_failed']:6d} {rel['n_recovered']:9d} "
              f"{rel['goodput_under_faults_rps']:11.3f}")

    section("3. The KV store turns re-prefill into a cache read")
    crashy_sessions = base.replace(arrival=SESSIONS,
                                   faults="replica_crash?mttf=15,mttr=5",
                                   recovery="retry?max=3,base_s=0.5")
    for kvstore in (None, "tiered?dram_gb=8.0"):
        art = runner.run(crashy_sessions.replace(kvstore=kvstore))
        rel = reliability(art)
        kv = art.methods["hack"].summary.get("kvstore")
        skipped = kv["prefill_tokens_skipped"] if kv else 0
        print(f"  {kvstore or '(no store)':24s} "
              f"wasted {rel['wasted_compute_s']:6.1f}s  "
              f"{skipped:6d} prefill tokens read from cache")

    section("4. Graceful degradation under capacity loss")
    # Three of four decode replicas crash-loop; the congestion policy
    # folds the lost capacity into its signal and escalates to the
    # stronger-compression method until repairs land.
    outage = base.replace(kvstore="tiered?dram_gb=8.0",
                          faults="replica_crash?mttf=15,mttr=30,replicas=3",
                          recovery="retry?max=3,base_s=0.5")
    for selection in (None, "congestion?hi=0.4,lo=0.2"):
        art = runner.run(outage.replace(selection=selection))
        s = art.methods["hack"].summary
        mix = {m: n for counts in s.get("selection_mix", {}).values()
               for m, n in counts.items()}
        mix = mix or {"hack": s["n_requests"]}
        print(f"  {selection or '(static)':26s} "
              f"avg JCT {s['avg_jct_s']:6.2f}s  method mix {mix}")

    section("5. Registering a custom fault family")

    @register_fault
    class MaintenanceFault(FaultFamily):
        """A scheduled maintenance window: one decode replica is taken
        down at a known time and comes back after ``duration`` — no
        randomness, unlike ``replica_crash``."""

        name = "maintenance"
        description = "planned downtime for one decode replica"
        params = {"start": FaultParam(60.0, "window start (s)"),
                  "duration": FaultParam(120.0, "window length (s)"),
                  "replica": FaultParam(0.0, "decode replica index")}

        def events(self, rng, horizon_s, n_prefill, n_decode):
            idx = min(int(self.p["replica"]), n_decode - 1)
            return [
                (self.p["start"], "replica_down", ("decode", idx)),
                (self.p["start"] + self.p["duration"],
                 "replica_up", ("decode", idx)),
            ]

    art = runner.run(base.replace(faults="maintenance?start=5,duration=60",
                                  recovery="migrate"))
    rel = reliability(art)
    print(f"  maintenance?start=5,duration=60  "
          f"availability {rel['availability']:.2f}  "
          f"migrated {rel['n_recovered']}  "
          f"wasted {rel['wasted_compute_s']:.1f}s")


if __name__ == "__main__":
    main()
