"""Long-context summarization: one arXiv request under the microscope.

The paper's motivating workload: a ~6K-token scientific article
summarized by Llama-3.1 70B in a disaggregated deployment.  This
example follows a *single request* through each system — how large its
KV is on the wire, how long prefill/transfer/decode take, what every
decode iteration pays — and then zooms out to a whole arXiv trace.

Run:  python examples/long_context_summarization.py
"""

from repro.analysis import Table
from repro.cluster import replica_resources
from repro.methods import PAPER_COMPARISON, get_method
from repro.model import get_model
from repro.perfmodel import (
    iteration_latency,
    kv_wire_bytes,
    prefill_time,
    transfer_time,
)
from repro.sim import default_cluster, experiment_rps, simulate
from repro.workload import generate_trace

MODEL = get_model("L")
PROMPT_LEN = 6300    # arXiv mean input (Table 4)
OUTPUT_LEN = 243     # arXiv mean output


def one_request_story():
    pre = replica_resources(MODEL, "A10G")
    dec = replica_resources(MODEL, "A100")
    print(f"One arXiv request: {PROMPT_LEN:,}-token article, "
          f"{OUTPUT_LEN}-token summary, Llama-70B\n")

    table = Table("Single-request anatomy (no queueing)",
                  ["method", "KV on wire (GB)", "prefill (s)",
                   "transfer (s)", "decode (s)", "total (s)"])
    for name in PAPER_COMPARISON:
        method = get_method(name)
        wire_gb = kv_wire_bytes(MODEL, method, PROMPT_LEN) / 1e9
        pb = prefill_time(MODEL, pre, PROMPT_LEN, method)
        comm = transfer_time(MODEL, method, PROMPT_LEN, pre, dec)
        # Decode alone on the replica (batch of one).
        iteration = iteration_latency(MODEL, dec, method,
                                      [PROMPT_LEN + OUTPUT_LEN // 2])
        decode_s = OUTPUT_LEN * iteration.latency_s
        total = pb.total_s + comm + decode_s
        table.add_row(name, wire_gb, pb.total_s, comm, decode_s, total)
    print(table.render())


def full_trace():
    rps = experiment_rps(MODEL, "A10G", "arxiv", load_factor=1.05)
    trace = generate_trace("arxiv", rps, 80, seed=3)
    print(f"\nWhole-trace view: 80 arXiv requests at {rps:.2f} rps\n")
    table = Table("arXiv trace (Llama-70B, A10G prefill)",
                  ["method", "avg JCT (s)", "comm (s)", "dequant/approx (s)",
                   "peak mem %"])
    for name in PAPER_COMPARISON:
        config = default_cluster(MODEL, get_method(name), "A10G")
        result = simulate(config, trace)
        decomp = result.mean_decomposition()
        table.add_row(name, result.avg_jct(), decomp["comm"],
                      decomp["dequant_or_approx"],
                      100 * result.peak_memory_fraction)
    print(table.render())


if __name__ == "__main__":
    one_request_story()
    full_trace()
