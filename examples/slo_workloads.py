"""Workloads & SLO metrics in five minutes.

Walks the serving-metric side of the API:

1. one scenario under four arrival processes (same long-run rate),
   compared on TTFT/TBT tails and SLO goodput;
2. an ``--arrival``-style sweep axis, spec grammar included;
3. a *multi-tenant* trace merged from two datasets with different
   arrival processes, run directly through the simulator;
4. recomputing attainment at custom SLO points from live results.

Run:  PYTHONPATH=src python examples/slo_workloads.py
"""

from repro.api import Runner, Scenario, Sweep
from repro.methods import get_method
from repro.model import get_model
from repro.sim import default_cluster, simulate
from repro.workload import generate_trace, merge_traces

SCALE = 0.1   # keep the demo fast; drop for paper-fidelity traces


def section(title):
    print(f"\n=== {title} ===")


def main():
    section("1. Same load, four arrival processes")
    sweep = Sweep(
        base=Scenario(methods=("baseline", "hack"), scale=SCALE),
        axes={"arrival": ["poisson", "gamma?cv=3.0",
                          "mmpp?burst=4.0,duty=0.1,dwell=30.0",
                          "diurnal?amp=0.8,period=300.0"]},
    )
    print(f"{'arrival':36s} {'method':9s} {'p99 TTFT':>9s} "
          f"{'p99 TBT':>8s} {'SLO att.':>9s}")
    for art in Runner(workers=4).run_sweep(sweep):
        for method, run in art.methods.items():
            s = run.summary
            print(f"{art.scenario.arrival:36s} {method:9s} "
                  f"{s['p99_ttft_s']:8.1f}s {s['p99_tbt_s']:7.3f}s "
                  f"{s['slo_attainment']:9.1%}")

    section("2. Arrival specs are sweepable strings")
    burst_sweep = Sweep(
        base=Scenario(methods=("hack",), dataset="imdb", scale=SCALE),
        axes={"arrival": ["mmpp?burst=2.0", "mmpp?burst=4.0",
                          "mmpp?burst=8.0"]},
    )
    for art in Runner().run_sweep(burst_sweep):
        s = art.methods["hack"].summary
        print(f"  {art.scenario.arrival:16s} p99 TTFT "
              f"{s['p99_ttft_s']:6.2f}s  goodput "
              f"{s['slo_goodput_rps']:.2f} req/s")

    section("3. A multi-tenant trace (two datasets, two processes)")
    trace = merge_traces(
        generate_trace("cocktail", rps=0.12, n_requests=12, seed=1),
        generate_trace("imdb", rps=2.0, n_requests=40, seed=2,
                       arrival="mmpp?burst=4.0,duty=0.2,dwell=15.0"),
    )
    config = default_cluster(get_model("L"), get_method("hack"), "A10G")
    res = simulate(config, trace)
    print(f"  {len(res.requests)} requests "
          f"(long-context tenant + bursty short tenant)")
    print(f"  p99 TTFT {res.ttft_percentile(99):.2f}s, "
          f"p99 TBT {res.tbt_percentile(99) * 1e3:.0f}ms")

    section("4. Attainment at custom SLO points")
    for ttft_slo, tbt_slo in ((5.0, 0.1), (20.0, 0.5), (60.0, 1.0)):
        att = res.slo_attainment(ttft_slo, tbt_slo)
        good = res.slo_goodput_rps(ttft_slo, tbt_slo)
        print(f"  TTFT<{ttft_slo:5.1f}s ∧ TBT<{tbt_slo:.1f}s → "
              f"attainment {att:6.1%}, goodput {good:.2f} req/s")


if __name__ == "__main__":
    main()
