"""Accuracy comparison: measure what 2-bit KV quantization costs.

Three instruments, smallest to largest scope:

1. element/attention-level error of every method on realistic KV
   distributions (the signal behind the Table 6 reproduction);
2. end-to-end greedy generation on the runnable numpy transformer with
   quantized decode caches, scored with the paper's own metrics
   (ROUGE-1, edit similarity);
3. the reproduced Table 6, anchored on the paper's baseline accuracies.

Run:  python examples/accuracy_comparison.py
"""

from repro.accuracy import (
    accuracy_table,
    generation_agreement,
    measure_errors,
)
from repro.analysis import Table


def attention_level():
    print("1. Attention-output error on realistic synthetic KV\n")
    errors = measure_errors(n_trials=4)
    table = Table("Mean relative attention error (lower is better)",
                  ["method", "error"])
    for method, err in sorted(errors.items(), key=lambda kv: kv[1]):
        table.add_row(method, err)
    print(table.render())
    return errors


def generation_level():
    print("\n2. End-to-end generation agreement (tiny numpy transformer)\n")
    table = Table("Greedy-generation agreement vs exact FP16 decode",
                  ["cache", "exact match", "ROUGE-1 F1", "edit sim"])
    for method in ("baseline", "hack", "hack_norqe", "dequant2bit"):
        g = generation_agreement(method, n_prompts=3, max_new_tokens=16)
        table.add_row(method, g.exact_match, g.rouge1_f1, g.edit_sim)
    print(table.render())


def table6(errors):
    print("\n3. Reproduced Table 6 (paper-anchored; Llama column shown)\n")
    cells = accuracy_table(
        {m: e for m, e in errors.items()
         if m in ("baseline", "hack_pi32", "hack_pi64", "hack_pi128",
                  "cachegen", "kvquant")}
    )
    datasets = ("imdb", "arxiv", "cocktail", "humaneval")
    table = Table("Accuracy (%) for Llama-3.1 70B",
                  ["method", *datasets])
    for method, per_cell in cells.items():
        table.add_row(method, *(per_cell[(d, "L")] for d in datasets))
    print(table.render())


if __name__ == "__main__":
    errors = attention_level()
    generation_level()
    table6(errors)
