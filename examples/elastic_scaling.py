"""Elastic clusters, admission control and GPU-hour efficiency in
five minutes.

Walks the cost-efficiency side of the API:

1. a peak-sized static fleet vs a reactive autoscaler on a diurnal
   day — GPU-hours billed and goodput per GPU-hour from the summary;
2. a time-of-day ``schedule`` plan that halves the fleet through the
   trough, no feedback loop needed;
3. queue-cap admission (``shed``) bounding tail TTFT under overload;
4. tier-aware degradation: low-SLO-tier requests run a cheaper
   compression method instead of being rejected;
5. registering a *custom* autoscaler and a *custom* admission policy
   — both registries are open, exactly like method, arrival, fault
   and eviction families.

Scaling is deterministic (the autoscaler evaluates on a fixed
interval over deterministic queue state), so each section prints the
same numbers on every run.

Run:  PYTHONPATH=src python examples/elastic_scaling.py
"""

from repro.api import Runner, Scenario
from repro.sim import (
    AdmissionPolicy,
    AutoscalerPolicy,
    ElasticParam,
    register_admission,
    register_autoscaler,
)

#: One diurnal cycle with a deep trough — the regime where elastic
#: scaling pays (amp=0.9 drops the trough to 10% of peak).
DIURNAL = "diurnal?amp=0.9,period=240.0"

#: Fast-reacting policy so the short demo trace shows real scaling.
REACTIVE = ("reactive?queue_hi=4,queue_lo=1,cooldown_s=15,"
            "interval_s=3,cold_start_s=8")

N_REQUESTS = 40   # keep the demo fast; drop for paper-fidelity traces


def section(title):
    print(f"\n=== {title} ===")


def cost(artifact, method="hack"):
    """The cost pair + elastic block from the summary."""
    s = artifact.methods[method].summary
    return s["gpu_hours"], s["goodput_per_gpu_hour"], s.get("elastic")


def main():
    runner = Runner()
    base = Scenario(methods=("hack",), n_requests=N_REQUESTS, seed=3,
                    arrival=DIURNAL, load_factor=0.4,
                    n_prefill_replicas=4)

    section("1. Peak-sized static fleet vs reactive autoscaler")
    static = runner.run(base.replace(autoscaler="static"))
    reactive = runner.run(base.replace(autoscaler=REACTIVE))
    for name, art in (("static", static), ("reactive", reactive)):
        hours, eff, el = cost(art)
        print(f"  {name:9s} gpu_hours {hours:6.3f}  "
              f"goodput/GPUh {eff:6.2f}  "
              f"mean prefill replicas {el['mean_prefill_replicas']:.2f}"
              f"/4  scale events {el['scaling_events']}")

    section("2. Time-of-day schedule (no feedback loop)")
    planned = runner.run(base.replace(
        autoscaler="schedule?plan=0:1.0|120:0.3,period_s=240,"
                   "interval_s=3,cold_start_s=8"))
    hours, eff, el = cost(planned)
    print(f"  schedule  gpu_hours {hours:6.3f}  goodput/GPUh {eff:6.2f}"
          f"  downs {el['n_scale_downs']}  ups {el['n_scale_ups']}")

    section("3. Queue-cap shedding bounds tail TTFT under overload")
    hot = base.replace(arrival="poisson", load_factor=1.4)
    open_door = runner.run(hot)
    capped = runner.run(hot.replace(admission="shed?queue_max=10"))
    p99 = open_door.methods["hack"].summary["p99_ttft_s"]
    print(f"  accept_all          p99 TTFT {p99:7.1f}s  shed 0")
    s = capped.methods["hack"].summary
    print(f"  shed?queue_max=10   p99 TTFT {s['p99_ttft_s']:7.1f}s  "
          f"shed {s['elastic']['n_shed']}")

    section("4. Tier-aware degradation instead of rejection")
    tiered = runner.run(Scenario(
        methods=("hack",), n_requests=N_REQUESTS, seed=3,
        load_factor=0.8, arrival="sessions?turns=2,tiers=3",
        admission="degrade?tier=1,method=hack_int4"))
    s = tiered.methods["hack"].summary
    mix = {}
    for rec in tiered.methods["hack"].requests:
        m = rec.get("method_selected", "hack")
        mix[m] = mix.get(m, 0) + 1
    print(f"  degraded {s['elastic']['n_degraded']} low-tier requests; "
          f"served mix {mix}")

    section("5. Custom policies: registries are open")

    @register_autoscaler
    class TroughHalver(AutoscalerPolicy):
        name = "trough_halver"
        description = "halve the fleet whenever the backlog is empty"
        params = {"interval_s": ElasticParam(3.0, "evaluation period"),
                  "cold_start_s": ElasticParam(8.0, "boot delay")}

        def desired(self, now, sim, n_prefill, n_decode, cur_prefill,
                    cur_decode):
            if sim.prefill_backlog() == 0:
                return max(1, n_prefill // 2), max(1, n_decode // 2)
            return n_prefill, n_decode

    @register_admission
    class VIPOnlyUnderLoad(AdmissionPolicy):
        name = "vip_only"
        description = "shed every non-zero tier once a backlog forms"
        params = {"queue_max": ElasticParam(8.0, "backlog threshold")}

        def admit(self, now, req, sim):
            if (req.trace.slo_tier > 0
                    and sim.prefill_backlog() >= self.p["queue_max"]):
                return "shed"
            return None

    custom = runner.run(Scenario(
        methods=("hack",), n_requests=N_REQUESTS, seed=3,
        load_factor=0.9, arrival="sessions?turns=2,tiers=3",
        autoscaler="trough_halver", admission="vip_only?queue_max=6"))
    hours, eff, el = cost(custom)
    print(f"  trough_halver + vip_only: gpu_hours {hours:.3f}  "
          f"goodput/GPUh {eff:.2f}  downs {el['n_scale_downs']}  "
          f"shed {el['n_shed']}")


if __name__ == "__main__":
    main()
