"""Defining your own method: a custom family, registered and swept.

The method layer is open: a method is a *family* (registered with
``@register_family``) plus parameters, and anything the built-in
families can do — CLI strings, JSON round-trips, sweep axes — works
for user families too.  This example registers a toy "token dropping"
family (keep a fraction of the KV cache at FP16, discard the rest),
then:

1. builds perf-model Methods from specs, strings and dicts;
2. runs it head-to-head against the paper's methods in one Scenario;
3. sweeps its parameter with a ``method.keep`` axis — the same
   mechanism as ``--axis method.partition_size=32,64,128,256`` on the
   real HACK family.

Run:  PYTHONPATH=src python examples/custom_method.py
"""

from repro.api import Runner, Scenario, Sweep
from repro.methods import (
    FP16_BYTES,
    Method,
    MethodFamily,
    MethodSpec,
    ParamDef,
    register_family,
    resolve_method,
)

SCALE = 0.1   # keep the demo fast; drop for paper-fidelity traces


@register_family("drop")
class TokenDropFamily(MethodFamily):
    """Toy eviction 'codec': keep a fraction of KV entries at FP16.

    Perf-model only (no accuracy-side compressors): wire and resident
    bytes shrink linearly with ``keep``, and nothing else changes — no
    dequantization pass, no quantization cost, no integer kernels.
    """

    description = "keep a fraction of FP16 KV, drop the rest"
    params = {
        "keep": ParamDef(0.5, doc="fraction of KV entries kept"),
    }

    def build_method(self, *, keep):
        if not 0.0 < keep <= 1.0:
            raise ValueError(f"keep must be in (0, 1], got {keep}")
        return Method(
            name=f"drop{int(round(100 * (1 - keep)))}",
            display_name=f"Token drop ({keep:.0%} kept)",
            kv_wire_bytes_per_value=FP16_BYTES * keep,
            kv_mem_bytes_per_value=FP16_BYTES * keep,
        )


def section(title):
    print(f"\n=== {title} ===")


def main():
    section("1. One family, many spellings")
    spec = MethodSpec.of("drop", keep=0.25)
    print(f"spec object : {spec!r}")
    print(f"string form : {spec.canonical()}")
    print(f"JSON form   : {spec.to_dict()}")
    for ref in (spec, "drop?keep=0.25", {"family": "drop", "keep": 0.25}):
        method = resolve_method(ref)
        print(f"  {str(ref)!r:42} -> {method.name} "
              f"({method.compression_ratio:.0%} compression)")

    section("2. Head-to-head with the paper's methods")
    scenario = Scenario(dataset="imdb", scale=SCALE,
                        methods=("baseline", "hack", "drop?keep=0.25"))
    artifact = Runner().run(scenario)
    print(artifact.summary_table().render())

    section("3. Sweeping the family parameter (method.keep axis)")
    sweep = Sweep(Scenario(dataset="imdb", scale=SCALE, methods=("drop",)),
                  axes={"method.keep": [0.25, 0.5, 1.0]})
    for art in Runner().run_sweep(sweep):
        method, = art.scenario.methods
        jct = art.methods[method].summary["avg_jct_s"]
        print(f"  {art.scenario.name:18} {method:15} avg JCT {jct:6.2f}s")
    print("\n(same sweep via the CLI entry point — families live in the "
          "registering process, so call it from here:)")
    from repro.cli import main as cli_main
    cli_main(["sweep", "--methods", "drop",
              "--axis", "method.keep=0.25,0.5", "--scale", str(SCALE),
              "--dataset", "imdb"])


if __name__ == "__main__":
    main()
