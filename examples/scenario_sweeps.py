"""The Scenario/Sweep API in five minutes.

Walks the unified front door for running anything in this repo:

1. one declarative Scenario → a structured RunArtifact;
2. artifact JSON: save, load, diff;
3. a cartesian Sweep over two axes, run in parallel;
4. a grid the paper never ran (decode on L4, pipelining on), showing
   the API reaches beyond the paper's cells.

Run:  PYTHONPATH=src python examples/scenario_sweeps.py
"""

import tempfile
from pathlib import Path

from repro.api import Runner, RunArtifact, Scenario, Sweep

SCALE = 0.1   # keep the demo fast; drop for paper-fidelity traces


def section(title):
    print(f"\n=== {title} ===")


def main():
    section("1. One scenario, one artifact")
    scenario = Scenario(model="L", dataset="cocktail",
                        methods=("baseline", "hack"), scale=SCALE)
    artifact = Runner().run(scenario)
    print(artifact.summary_table().render())

    section("2. Artifacts are deterministic JSON")
    with tempfile.TemporaryDirectory() as tmp:
        path = artifact.save(Path(tmp))
        loaded = RunArtifact.load(path)
        print(f"saved {path.name} ({path.stat().st_size:,} B)")
        print(f"round-trips byte-identically: "
              f"{loaded.to_json() == artifact.to_json()}")
        print(f"diff vs itself: {artifact.compare(loaded)['equal']}")

    section("3. A 2-axis sweep, 4 workers")
    sweep = Sweep(
        base=Scenario(methods=("hack",), scale=SCALE),
        axes={"dataset": ["imdb", "humaneval"],
              "prefill_gpu": ["A10G", "V100"]},
    )
    for art in Runner(workers=4).run_sweep(sweep):
        s = art.scenario
        jct = art.methods["hack"].summary["avg_jct_s"]
        print(f"  {s.dataset:10s} {s.prefill_gpu:5s} avg JCT {jct:7.2f}s")

    section("4. Beyond the paper's cells")
    custom = Scenario(model="Y", dataset="arxiv", prefill_gpu="T4",
                      decode_gpu="L4", pipelining=True,
                      methods=("baseline", "hack"), scale=SCALE)
    art = Runner().run(custom)
    base = art.methods["baseline"].summary["avg_jct_s"]
    hack = art.methods["hack"].summary["avg_jct_s"]
    print(f"Yi-34B, arXiv, T4 prefill → L4 decode, pipelining on:")
    print(f"  baseline {base:.2f}s vs HACK {hack:.2f}s "
          f"({100 * (1 - hack / base):.0f}% JCT reduction)")


if __name__ == "__main__":
    main()
