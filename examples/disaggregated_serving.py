"""Disaggregated serving simulation: the paper's §7.2 experiment, live.

Deploys Llama-3.1 70B with the paper's Table 2/3 fleets (A10G prefill,
A100 decode), replays a Cocktail trace at the baseline's capacity, and
compares the four systems end to end: JCT, decomposition, memory, and
where each method's time goes.

Run:  python examples/disaggregated_serving.py [--gpu A10G] [--requests 80]
"""

import argparse

from repro.analysis import Table
from repro.methods import PAPER_COMPARISON, get_method
from repro.model import get_model
from repro.sim import capacity_rps, default_cluster, simulate, stage_capacities
from repro.workload import generate_trace, get_dataset


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gpu", default="A10G",
                        choices=["A10G", "V100", "T4", "L4", "A100"])
    parser.add_argument("--dataset", default="cocktail",
                        choices=["imdb", "arxiv", "cocktail", "humaneval"])
    parser.add_argument("--requests", type=int, default=80)
    args = parser.parse_args()

    model = get_model("L")
    dataset = get_dataset(args.dataset)

    baseline_cfg = default_cluster(model, get_method("baseline"), args.gpu)
    prefill_rps, nic_rps, decode_rps = stage_capacities(baseline_cfg, dataset)
    rps = capacity_rps(baseline_cfg, dataset) * 1.05
    print(f"Deployment: {baseline_cfg.n_prefill_replicas} {args.gpu} prefill "
          f"replicas, {baseline_cfg.n_decode_replicas} A100 decode replicas")
    print(f"Baseline stage capacities (rps): prefill {prefill_rps:.2f}, "
          f"NIC {nic_rps:.2f}, decode {decode_rps:.2f}")
    print(f"Offered load: {rps:.2f} rps ({args.requests} requests)\n")

    trace = generate_trace(dataset, rps, args.requests, seed=1)

    table = Table(f"Llama-70B on {args.gpu} prefill / {args.dataset}",
                  ["method", "avg JCT (s)", "prefill", "comm",
                   "dequant/approx", "decode", "queue", "peak mem %",
                   "swapped"])
    jcts = {}
    for name in PAPER_COMPARISON:
        config = default_cluster(model, get_method(name), args.gpu)
        result = simulate(config, trace)
        decomp = result.mean_decomposition()
        jcts[name] = result.avg_jct()
        table.add_row(
            name, result.avg_jct(), decomp["prefill"], decomp["comm"],
            decomp["dequant_or_approx"], decomp["decode"], decomp["queue"],
            100 * result.peak_memory_fraction, result.n_swapped,
        )
    print(table.render())

    print("\nHACK reduces average JCT by "
          f"{1 - jcts['hack'] / jcts['baseline']:.1%} vs the baseline, "
          f"{1 - jcts['hack'] / jcts['cachegen']:.1%} vs CacheGen, "
          f"{1 - jcts['hack'] / jcts['kvquant']:.1%} vs KVQuant.")


if __name__ == "__main__":
    main()
