"""Quickstart: HACK's homomorphic quantization in five minutes.

Walks the core ideas of the paper on small matrices:

1. asymmetric partitioned 2-bit quantization of K/V;
2. the Eq. 4 homomorphic matmul — computing on codes, no dequantization
   — and its exactness relative to dequantize-then-multiply;
3. full HACK attention vs exact attention;
4. the decode-path KV cache with SE and RQE;
5. what all of this buys: wire bytes and per-iteration flops.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accuracy.kv_distributions import synthetic_attention_inputs
from repro.core import (
    HackConfig,
    HackKVCache,
    Fp16KVCache,
    attention_hack,
    attention_reference,
    costs,
    dequantize,
    homomorphic_matmul,
    make_rng,
    quantize,
    transpose,
)


def section(title):
    print(f"\n=== {title} ===")


def main():
    rng = make_rng(0)

    section("1. Partitioned asymmetric 2-bit quantization")
    k = synthetic_attention_inputs(64, 128, rng)[1]  # a realistic K plane
    k_quant = quantize(k, bits=2, axis=1, partition_size=64, rng=rng)
    k_hat = dequantize(k_quant)
    rel_err = np.abs(k_hat - k).mean() / np.abs(k).mean()
    print(f"K plane {k.shape}: 2-bit codes + FP16 min/scale per Π=64 partition")
    print(f"  storage: {k_quant.total_nbytes(with_sums=False):,} B "
          f"(FP16 would be {k.size * 2:,} B)")
    print(f"  mean element error: {rel_err:.1%} of mean |K|")

    section("2. Eq. 4: multiply the codes, never dequantize")
    q = synthetic_attention_inputs(8, 128, make_rng(1))[0]
    q_quant = quantize(q, bits=8, axis=1, partition_size=64, rng=rng)
    scores_hom = homomorphic_matmul(q_quant, transpose(k_quant))
    scores_ref = dequantize(q_quant) @ k_hat.T
    print(f"  max |homomorphic - dequantized path|: "
          f"{np.abs(scores_hom - scores_ref).max():.2e}  (an identity)")

    section("3. HACK attention vs exact attention")
    q, k, v = synthetic_attention_inputs(256, 128, make_rng(2), l_q=16)
    exact = attention_reference(q, k, v, causal=False)
    approx = attention_hack(q, k, v, HackConfig(partition_size=64),
                            rng=make_rng(0), causal=False)
    rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
    print(f"  attention output relative error at 2-bit KV: {rel:.1%}")

    section("4. The decode-path cache (SE sums + RQE FP16 tail)")
    d = 128
    cache = HackKVCache(d, partition_size=64, rng=make_rng(3))
    exact_cache = Fp16KVCache(d)
    k_seq, v_seq = (synthetic_attention_inputs(200, d, make_rng(4))[i]
                    for i in (1, 2))
    cache.append_bulk(k_seq[:150], v_seq[:150])      # prefill handoff
    exact_cache.append_bulk(k_seq[:150], v_seq[:150])
    for t in range(150, 200):                        # decode appends
        cache.append(k_seq[t], v_seq[t])
        exact_cache.append(k_seq[t], v_seq[t])
    q_vec = make_rng(5).normal(size=d)
    out = cache.attention(q_vec)
    ref = exact_cache.attention(q_vec)
    print(f"  cache: {len(cache)} tokens, {cache.total_nbytes():,} B "
          f"(FP16: {exact_cache.kv_nbytes():,} B)")
    print(f"  decode-step output error: "
          f"{np.linalg.norm(out - ref) / np.linalg.norm(ref):.1%}")
    print(f"  SE sums: {cache.sums_nbytes():,} B; "
          f"RQE FP16 tail: {cache.fp16_tail_nbytes():,} B")

    section("5. Why it matters (the paper's §5.3 arithmetic)")
    d_h, ctx = 128, 16200  # Cocktail-scale context
    dequant_flops = costs.kv_dequant_flops_per_iter(d_h, ctx)
    approx_flops = costs.hack_approx_flops_per_iter(d_h, ctx)
    print(f"  per decode iteration at L={ctx:,}: dequantization costs "
          f"{dequant_flops:,} flops,")
    print(f"  HACK's Eq. 4 corrections cost {approx_flops:,} flops "
          f"({dequant_flops / approx_flops:.0f}x less)")
    print(f"  and the KV crosses the wire at ~15% of its FP16 size.")


if __name__ == "__main__":
    main()
