"""Scheduling policies & heterogeneous prefill fleets in five minutes.

Walks the scheduling side of the API:

1. a heterogeneous A10G+T4 prefill fleet (per-fleet replica counts in
   the ``prefill_gpu`` grammar) compared across dispatch policies;
2. placement policies, including ``no_swap`` admission control and the
   rejected-request counts it surfaces;
3. a ``--scheduler``-style sweep axis, spec grammar included;
4. registering a *custom* dispatch policy and running it — the
   registry is open, exactly like method and arrival families.

Run:  PYTHONPATH=src python examples/scheduling_policies.py
"""

from repro.api import Runner, Scenario, Sweep
from repro.methods import get_method
from repro.model import get_model
from repro.sim import (
    PrefillDispatchPolicy,
    default_cluster,
    register_policy,
    simulate,
)
from repro.workload import generate_trace

N_REQUESTS = 40   # keep the demo fast; drop for paper-fidelity traces


def section(title):
    print(f"\n=== {title} ===")


def main():
    section("1. Dispatch policies on a mixed A10G+T4 fleet")
    sweep = Sweep(
        base=Scenario(methods=("hack",), prefill_gpu="A10G+T4",
                      n_requests=N_REQUESTS,
                      arrival="mmpp?burst=4.0,duty=0.1,dwell=30.0"),
        axes={"scheduler": ["splitwise", "round_robin", "random?seed=7",
                            "least_work", "nic_aware"]},
    )
    print(f"{'dispatch':16s} {'avg JCT':>8s} {'p99 TTFT':>9s}")
    for art in Runner().run_sweep(sweep):
        s = art.methods["hack"].summary
        print(f"{art.scenario.scheduler:16s} {s['avg_jct_s']:7.1f}s "
              f"{s['p99_ttft_s']:8.1f}s")

    section("2. Placement: swap (the paper's DéjàVu) vs no_swap/reject")
    L = get_model("L")
    trace = generate_trace("cocktail", rps=1.0, n_requests=30, seed=2)
    for scheduler in ("splitwise+shortest_queue", "splitwise+no_swap"):
        config = default_cluster(L, get_method("baseline"), "A10G",
                                 n_decode_instances=1,
                                 activation_overhead=1.1,
                                 scheduler=scheduler)
        res = simulate(config, trace)
        print(f"  {scheduler:26s} finished {len(res.requests):2d}  "
              f"swapped {res.n_swapped:2d}  rejected {res.n_rejected:2d}")

    section("3. Scheduler pairs are sweepable strings")
    pair_sweep = Sweep(
        base=Scenario(methods=("baseline", "hack"), dataset="imdb",
                      n_requests=N_REQUESTS),
        axes={"scheduler": ["splitwise+shortest_queue",
                            "nic_aware+best_fit"]},
    )
    for art in Runner(workers=2).run_sweep(pair_sweep):
        for method, run in art.methods.items():
            print(f"  {art.scenario.scheduler:26s} {method:9s} "
                  f"goodput {run.summary['slo_goodput_rps']:.2f} req/s")

    section("4. Registering a custom dispatch policy")

    @register_policy
    class LongestQueueDispatch(PrefillDispatchPolicy):
        """Deliberately terrible: pile everything on the busiest
        replica (a lower bound to sanity-check the smart policies)."""

        name = "longest_queue"
        description = "anti-policy: always the most-loaded replica"

        def choose(self, now, req, replicas):
            return max(range(len(replicas)),
                       key=lambda i: (replicas[i].queued_tokens,
                                      replicas[i].assigned))

    for scheduler in ("splitwise", "longest_queue"):
        art = Runner().run(Scenario(methods=("hack",),
                                    n_requests=N_REQUESTS,
                                    scheduler=scheduler))
        s = art.methods["hack"].summary
        print(f"  {scheduler:14s} avg JCT {s['avg_jct_s']:6.1f}s "
              f"(queueing {'explodes' if scheduler == 'longest_queue' else 'balanced'})")


if __name__ == "__main__":
    main()
