"""Tiered KV store & compression selection in five minutes.

Walks the KV-store side of the API:

1. cold vs warm: a multi-turn session workload (``sessions`` arrival
   family) without and with the tiered prefix cache — hit rate, prefill
   tokens skipped, and the TTFT win;
2. the ``tiered?k=v+eviction?k=v`` spec grammar and a
   ``kvstore.dram_gb`` sweep axis (capacity vs eviction churn);
3. compression-selection policies: per-SLO-class methods
   (``slo_tier``) and congestion-triggered escalation, plus the
   per-tier selection mix each run reports;
4. registering a *custom* eviction policy — the registry is open,
   exactly like method, arrival and scheduler families.

Run:  PYTHONPATH=src python examples/kvstore_tiers.py
"""

from repro.api import Runner, Scenario, Sweep
from repro.kvstore import EvictionPolicy, register_eviction

#: Multi-turn conversations: ~4 turns, 20 s think time, each turn ~30%
#: new tokens on top of the shared prefix, three SLO classes.
SESSIONS = "sessions?turns=4.0,think_time=20.0,prefix_growth=0.3,tiers=3.0"
N_REQUESTS = 60   # keep the demo fast; drop for paper-fidelity traces


def section(title):
    print(f"\n=== {title} ===")


def main():
    runner = Runner()
    base = Scenario(methods=("hack",), arrival=SESSIONS,
                    n_requests=N_REQUESTS, rps=2.0)

    section("1. Cold vs warm: what the prefix cache buys")
    for kvstore in (None, "tiered?dram_gb=8.0"):
        art = runner.run(base.replace(kvstore=kvstore))
        s = art.methods["hack"].summary
        kv = s.get("kvstore")
        label = kvstore or "(no store)"
        if kv is None:
            print(f"  {label:24s} mean TTFT {s['mean_ttft_s']:6.2f}s "
                  f"(every turn re-prefills the whole conversation)")
        else:
            print(f"  {label:24s} mean TTFT {s['mean_ttft_s']:6.2f}s   "
                  f"hit rate {kv['hit_rate']:.0%}, "
                  f"{kv['prefill_tokens_skipped']} prefill tokens skipped")

    section("2. Capacity is a sweep axis (kvstore.dram_gb)")
    # Tiny HBM + a 1 GB pool so total capacity actually binds: the
    # DRAM tier decides whether conversations survive to their next
    # turn or get evicted out of the hierarchy first.
    sweep = Sweep(base=base.replace(kvstore="tiered?hbm_gb=0.1,pool_gb=1.0"),
                  axes={"kvstore.dram_gb": [0.1, 1.0, 8.0]})
    print(f"{'kvstore':44s} {'hit rate':>8s} {'dropped':>7s} "
          f"{'mean TTFT':>9s}")
    for art in runner.run_sweep(sweep):
        s = art.methods["hack"].summary
        kv = s["kvstore"]
        print(f"{art.scenario.kvstore:44s} {kv['hit_rate']:8.0%} "
              f"{kv['dropped']:7d} {s['mean_ttft_s']:8.2f}s")

    section("3. Compression selection: per-request method choice")
    for selection in ("slo_tier", "congestion?hi=0.75,lo=0.5"):
        art = runner.run(base.replace(kvstore="tiered?dram_gb=8.0",
                                      selection=selection))
        s = art.methods["hack"].summary
        mix = {tier: dict(counts)
               for tier, counts in s["selection_mix"].items()}
        print(f"  {selection:26s} mix by SLO class: {mix}")

    section("4. Registering a custom eviction policy")

    @register_eviction
    class LargestFirstEviction(EvictionPolicy):
        """Evict the biggest entry — frees the most bytes per victim
        (ties broken on insertion order, so runs stay deterministic)."""

        name = "largest"
        description = "evict the largest entry first"

        def victim(self, entries, now):
            return max(entries, key=lambda e: (e.nbytes, -e.seq))

    for kvstore in ("tiered?dram_gb=0.2",          # default LRU
                    "tiered?dram_gb=0.2+largest"):  # the new policy
        art = runner.run(base.replace(kvstore=kvstore))
        kv = art.methods["hack"].summary["kvstore"]
        evictions = sum(t["evictions"] for t in kv["tiers"].values())
        print(f"  {kvstore:26s} hit rate {kv['hit_rate']:.0%}  "
              f"evictions {evictions}")


if __name__ == "__main__":
    main()
